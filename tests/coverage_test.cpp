// Remaining option paths and small surfaces: disassembly of every opcode,
// unlisted-module shadowing toggle, custom file registration, direct stream
// injection, signal posting from the host side.
#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "isa/assembler.hpp"

namespace fc {
namespace {

namespace abi = fc::abi;

TEST(Disasm, EveryEmitterProducesReadableText) {
  using isa::Reg;
  struct Case {
    std::function<void(isa::Assembler&)> emit;
    const char* prefix;
  };
  const Case cases[] = {
      {[](isa::Assembler& a) { a.nop(); }, "nop"},
      {[](isa::Assembler& a) { a.push(Reg::FP); }, "push"},
      {[](isa::Assembler& a) { a.pop(Reg::A); }, "pop"},
      {[](isa::Assembler& a) { a.mov(Reg::A, Reg::B); }, "mov"},
      {[](isa::Assembler& a) { a.mov_imm(Reg::C, 7); }, "mov"},
      {[](isa::Assembler& a) { a.load(Reg::A, Reg::FP, 4); }, "mov"},
      {[](isa::Assembler& a) { a.store(Reg::FP, -8, Reg::B); }, "mov"},
      {[](isa::Assembler& a) { a.load_abs(0x1234); }, "mov"},
      {[](isa::Assembler& a) { a.store_abs(0x1234); }, "mov"},
      {[](isa::Assembler& a) { a.add(Reg::A, Reg::B); }, "add"},
      {[](isa::Assembler& a) { a.sub(Reg::A, Reg::B); }, "sub"},
      {[](isa::Assembler& a) { a.xor_(Reg::A, Reg::B); }, "xor"},
      {[](isa::Assembler& a) { a.or_(Reg::A, Reg::B); }, "or"},
      {[](isa::Assembler& a) { a.cmp(Reg::A, Reg::B); }, "cmp"},
      {[](isa::Assembler& a) { a.cmp_imm_a(1); }, "cmp"},
      {[](isa::Assembler& a) { a.add_imm_a(1); }, "add"},
      {[](isa::Assembler& a) { a.sub_imm_a(1); }, "sub"},
      {[](isa::Assembler& a) { a.ret(); }, "ret"},
      {[](isa::Assembler& a) { a.leave(); }, "leave"},
      {[](isa::Assembler& a) { a.int_(0x80); }, "int"},
      {[](isa::Assembler& a) { a.iret(); }, "iret"},
      {[](isa::Assembler& a) { a.hlt(); }, "hlt"},
      {[](isa::Assembler& a) { a.pusha(); }, "pusha"},
      {[](isa::Assembler& a) { a.popa(); }, "popa"},
      {[](isa::Assembler& a) { a.cli(); }, "cli"},
      {[](isa::Assembler& a) { a.sti(); }, "sti"},
      {[](isa::Assembler& a) { a.ud2(); }, "ud2"},
      {[](isa::Assembler& a) { a.ksvc(9); }, "ksvc"},
      {[](isa::Assembler& a) { a.appstep(); }, "appstep"},
      {[](isa::Assembler& a) { a.rdtsc(); }, "rdtsc"},
      {[](isa::Assembler& a) { a.calltab(0xC0C00800); }, "call"},
  };
  for (const Case& c : cases) {
    isa::Assembler a;
    c.emit(a);
    std::vector<u8> bytes = a.finish(0x1000);
    isa::DecodeResult r = isa::decode(bytes);
    ASSERT_TRUE(r.ok()) << c.prefix;
    std::string text = isa::disasm(r.insn, 0x1000);
    EXPECT_EQ(text.rfind(c.prefix, 0), 0u) << text;
  }
}

TEST(ViewBuilder, UnlistedModuleShadowingCanBeDisabled) {
  harness::GuestSystem sys;
  core::ViewBuilderOptions options;
  options.shadow_unlisted_modules = false;
  core::ViewBuilder builder(sys.hv(), sys.os().kernel(), options);

  core::KernelViewConfig cfg;
  cfg.app_name = "x";
  cfg.base.insert(sys.os().kernel().text_base,
                  sys.os().kernel().text_base + 16);
  auto view = builder.build(cfg, 1);
  // e1000 is loaded and visible but unlisted: with shadowing disabled its
  // pages keep the identity mapping (no PTE overrides at all).
  EXPECT_TRUE(view->module_ptes.empty());
  auto mod = sys.os().loaded_module("e1000");
  EXPECT_FALSE(view->manages_page(mem::GuestLayout::kernel_pa(mod->base)));
}

TEST(OsRuntime, CustomFilesAreUsable) {
  harness::GuestSystem sys;
  u32 path = sys.os().register_file(
      {abi::FileClass::kProc, 8192, "/proc/custom"});
  class Reader : public os::AppModel {
   public:
    explicit Reader(u32 path) : path_(path) {}
    os::AppAction next(u32 last, os::OsRuntime&, u32) override {
      switch (phase_++) {
        case 0: return os::AppAction::syscall(abi::kSysOpen, path_, 0);
        case 1:
          fd_ = last;
          return os::AppAction::syscall(abi::kSysRead, fd_, 512);
        case 2:
          result_ = last;
          [[fallthrough]];
        default:
          return os::AppAction::syscall(abi::kSysExit);
      }
    }
    u32 result_ = 0;
   private:
    u32 path_, fd_ = 0;
    int phase_ = 0;
  };
  auto model = std::make_shared<Reader>(path);
  u32 pid = sys.os().spawn("reader", model);
  sys.run_until_exit(pid, 300'000'000);
  EXPECT_EQ(model->result_, 512u);
}

TEST(OsRuntime, DirectStreamInjectionReachesConnectedSockets) {
  harness::GuestSystem sys;
  class Client : public os::AppModel {
   public:
    os::AppAction next(u32 last, os::OsRuntime& osr, u32) override {
      switch (phase_++) {
        case 0: return os::AppAction::syscall(abi::kSysSocket, 2, 1);
        case 1:
          fd_ = last;
          return os::AppAction::syscall(abi::kSysConnect, fd_, 80);
        case 2:
          // Host-side push onto this socket (index 0: first created).
          osr.schedule_stream_data(osr.hypervisor().vcpu().cycles() + 50'000,
                                   0, 777);
          return os::AppAction::syscall(abi::kSysRecvfrom, fd_, 2048);
        case 3:
          got_ = last;
          [[fallthrough]];
        default:
          return os::AppAction::syscall(abi::kSysExit);
      }
    }
    u32 got_ = 0;
   private:
    u32 fd_ = 0;
    int phase_ = 0;
  };
  auto model = std::make_shared<Client>();
  u32 pid = sys.os().spawn("client", model);
  sys.run_until_exit(pid, 300'000'000);
  EXPECT_EQ(model->got_, 777u);
}

TEST(OsRuntime, HostPostedSignalRunsTheHandler) {
  harness::GuestSystem sys;
  // Handler shellcode: uname; sigreturn.
  os::UserCodeBuilder handler(os::kUserInjectVa);
  handler.syscall(abi::kSysUname);
  handler.syscall(abi::kSysSigreturn);
  class Sleeper : public os::AppModel {
   public:
    os::AppAction next(u32, os::OsRuntime&, u32) override {
      switch (phase_++) {
        case 0:
          return os::AppAction::syscall(abi::kSysSigaction, 10,
                                        os::kUserInjectVa);
        case 1: return os::AppAction::syscall(abi::kSysNanosleep, 500);
        default: return os::AppAction::syscall(abi::kSysExit);
      }
    }
   private:
    int phase_ = 0;
  };
  u32 pid = sys.os().spawn("sleeper", std::make_shared<Sleeper>());
  sys.os().inject_code(pid, handler.finish());
  sys.run_for(5'000'000);
  u64 syscalls_before = sys.os().counters().syscalls;
  sys.os().post_signal(pid, 10);
  sys.run_until_exit(pid, 400'000'000);
  // EINTR path: the handler's uname+sigreturn executed.
  EXPECT_GE(sys.os().counters().syscalls - syscalls_before, 2u);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
}

TEST(OsRuntime, DebugTasksListsLiveProcesses) {
  harness::GuestSystem sys;
  apps::AppScenario top = apps::make_app("top", 30);
  sys.os().spawn("top", top.model);
  top.install_environment(sys.os());
  sys.run_for(3'000'000);
  std::string dump = sys.os().debug_tasks();
  EXPECT_NE(dump.find("swapper"), std::string::npos);
  EXPECT_NE(dump.find("top"), std::string::npos);
  EXPECT_NE(dump.find("<current>"), std::string::npos);
}

}  // namespace
}  // namespace fc
