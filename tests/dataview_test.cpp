// Data-view integrity tests: the HostMemory data write barrier, the static
// writer-whitelist distilled by analysis/datawrite, and the end-to-end
// monitor scenarios (data-only rootkit positive controls + the benign
// 12-app false-positive control).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "attacks/attacks.hpp"
#include "core/dataview.hpp"
#include "harness/harness.hpp"
#include "mem/host_memory.hpp"
#include "obs/trace.hpp"

namespace fc {
namespace {

struct RecordingSink : mem::DataWriteSink {
  std::vector<std::tuple<HostFrame, u32, u32>> hits;
  void on_data_frame_write(HostFrame frame, u32 offset, u32 len,
                           mem::FrameWriteCause) override {
    hits.emplace_back(frame, offset, len);
  }
};

TEST(DataWriteBarrier, FiresOnWatchedFramesOnly) {
  mem::HostMemory host;
  HostFrame watched = host.alloc_frame();
  HostFrame other = host.alloc_frame();
  RecordingSink sink;
  host.watch_data_frame(watched);
  host.add_data_write_sink(&sink);

  host.write32(watched, 8, 0xDEADBEEF);
  host.write8(other, 1, 7);  // unwatched: silent
  const u8 bytes[3] = {1, 2, 3};
  host.write_bytes(watched, 64, bytes);
  host.write8(watched, 200, 0x5A);

  ASSERT_EQ(sink.hits.size(), 3u);
  EXPECT_EQ(sink.hits[0], std::make_tuple(watched, 8u, 4u));
  EXPECT_EQ(sink.hits[1], std::make_tuple(watched, 64u, 3u));
  EXPECT_EQ(sink.hits[2], std::make_tuple(watched, 200u, 1u));

  // Post-mutation contract: the sink reads the new bytes.
  struct PostSink : mem::DataWriteSink {
    mem::HostMemory* host = nullptr;
    u32 seen = 0;
    void on_data_frame_write(HostFrame frame, u32 offset, u32,
                             mem::FrameWriteCause) override {
      seen = host->read32(frame, offset);
    }
  } post;
  post.host = &host;
  host.add_data_write_sink(&post);
  host.write32(watched, 16, 0xCAFE0001);
  EXPECT_EQ(post.seen, 0xCAFE0001u);

  // zero_frame on a dirty frame is a (page-wide) data mutation too.
  sink.hits.clear();
  host.zero_frame(watched);
  ASSERT_EQ(sink.hits.size(), 1u);
  EXPECT_EQ(sink.hits[0], std::make_tuple(watched, 0u, kPageSize));

  // Same-value writes on a zero-backed frame are suppressed entirely.
  sink.hits.clear();
  host.write32(watched, 8, 0);
  EXPECT_TRUE(sink.hits.empty());

  host.remove_data_write_sink(&sink);
  host.write32(watched, 8, 0x11111111);
  EXPECT_TRUE(sink.hits.empty());
}

TEST(DataWriteAnalysis, CleanBootWhitelistsModuleManagementOnly) {
  const harness::ProbeContext& ctx = harness::probe_context();
  const core::DataViewPolicy& policy = ctx.data.policy;

  ASSERT_EQ(policy.objects.size(), 2u);
  EXPECT_EQ(policy.objects[0].name, "syscall-table");
  EXPECT_EQ(policy.objects[1].name, "module-list");
  EXPECT_FALSE(policy.objects[0].track_module_nodes);
  EXPECT_TRUE(policy.objects[1].track_module_nodes);

  auto writer_named = [](const core::DataViewPolicy::ObjectRule& o,
                         const char* name) {
    for (const core::DataViewPolicy::Writer& w : o.writers)
      if (w.name == name) return true;
    return false;
  };
  // load_module parks the init pointer in slot 511 and links the list head;
  // sys_delete_module unlinks. Nothing else in the base kernel writes
  // either object.
  EXPECT_TRUE(writer_named(policy.objects[0], "load_module"));
  EXPECT_TRUE(writer_named(policy.objects[1], "load_module"));
  EXPECT_TRUE(writer_named(policy.objects[1], "sys_delete_module"));
  EXPECT_EQ(policy.total_writers(), 3u);

  // The trust boundary: a clean boot has zero module-unit writer sites.
  EXPECT_TRUE(ctx.data.untrusted.empty());
  EXPECT_FALSE(ctx.data.trusted.empty());
  // The base kernel mutates protected data exclusively through KSVC leaves
  // (that is why the pass carries effect summaries); every decoded store is
  // accounted either resolved or unresolved, never dropped.
  EXPECT_GE(ctx.data.stats.ksvc_summaries, 3u);
  EXPECT_EQ(ctx.data.stats.stores_seen,
            ctx.data.stats.stores_resolved + ctx.data.stats.stores_unresolved);

  // Trusted sites arrive sorted by their function-relative key (the
  // artifact-diff identity).
  for (std::size_t i = 1; i < ctx.data.trusted.size(); ++i) {
    EXPECT_LE(ctx.data.trusted[i - 1].key(ctx.graph, policy),
              ctx.data.trusted[i].key(ctx.graph, policy));
  }
}

TEST(DataViewScenarios, DataOnlyRootkitsAreDetected) {
  std::vector<std::unique_ptr<attacks::Attack>> attacks =
      attacks::make_data_only_attacks();
  ASSERT_EQ(attacks.size(), 2u);

  obs::recorder().start();
  harness::DataViewRunResult hook = harness::run_data_view_attack(*attacks[0]);
  obs::recorder().stop();
  EXPECT_EQ(hook.name, "KBeast-TableHook");
  ASSERT_FALSE(hook.violations.empty());
  EXPECT_EQ(hook.violations[0].object, 0u) << "syscall-table hook";
  EXPECT_TRUE(hook.untrusted_static_writer);

  // The violation is visible on the observability plane too: a
  // dataview_write event with the whitelisted bit clear. (Detection itself
  // does not depend on the recorder — the FC_OBS_DISABLED build still runs
  // everything above; only this event assertion needs the emit sites.)
#if !defined(FC_OBS_DISABLED)
  bool saw_violation_event = false;
  for (const obs::TraceEvent& e : obs::recorder().snapshot()) {
    if (e.kind == obs::EventKind::kDataViewWrite && (e.flags & 1u) == 0)
      saw_violation_event = true;
  }
  EXPECT_TRUE(saw_violation_event);
#endif

  harness::DataViewRunResult dkom = harness::run_data_view_attack(*attacks[1]);
  EXPECT_EQ(dkom.name, "Adore-DKOM");
  ASSERT_FALSE(dkom.violations.empty());
  EXPECT_EQ(dkom.violations[0].object, 1u) << "module-list unlink";
  EXPECT_TRUE(dkom.untrusted_static_writer);

  // Neither variant trips the code-view signature path — that is the whole
  // point of the data-view tier.
  EXPECT_TRUE(attacks[0]->detection_signature().empty());
  EXPECT_TRUE(attacks[1]->detection_signature().empty());
}

TEST(DataViewScenarios, BenignRunIsViolationFree) {
  harness::DataViewRunResult r = harness::run_data_view_benign(/*iterations=*/1);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.stats.violations, 0u);
  // The benign module load produces whitelisted protected-object writes
  // (slot-511 parking + list-head link) — the monitor must see and pass
  // them, not merely see nothing.
  EXPECT_GE(r.stats.writes_checked, 2u);
  EXPECT_EQ(r.stats.whitelisted, r.stats.writes_checked);
  EXPECT_FALSE(r.untrusted_static_writer);
  EXPECT_EQ(r.whitelist_writers, 3u);
}

}  // namespace
}  // namespace fc
