// FACE-CHANGE engine tests (Algorithm 1): view switching at the guest's
// context switches, deferral to resume-userspace, same-view optimization,
// selectors, hot load/unload, EPT state transitions, and cost accounting.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

using mem::GuestLayout;

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : engine_(sys_.hv(), sys_.os().kernel()) {}

  u8 current_byte(GVirt va) {
    return sys_.hv().machine().pread8(GuestLayout::kernel_pa(va));
  }

  harness::GuestSystem sys_;
  core::FaceChangeEngine engine_;
};

TEST_F(EngineFixture, ForceActivateRedirectsKernelCode) {
  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt probe = kernel.symbols.must_addr("udp_recvmsg");
  u8 pristine = current_byte(probe);
  EXPECT_EQ(pristine, 0x55);  // prologue

  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.force_activate(view);
  // top never touches UDP: through the EPT the same VA now reads UD2.
  EXPECT_EQ(current_byte(probe) == 0x0F || current_byte(probe) == 0x0B, true);
  EXPECT_EQ(engine_.active_view_id(), view);

  engine_.force_activate(core::kFullKernelViewId);
  EXPECT_EQ(current_byte(probe), 0x55);
}

TEST_F(EngineFixture, ProfiledCodeIsPresentInTheActiveView) {
  const os::KernelImage& kernel = sys_.os().kernel();
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.force_activate(view);
  // Code top DOES use is byte-identical to the pristine kernel.
  for (const char* fn : {"proc_reg_read", "sys_nanosleep", "tty_write",
                         "schedule", "syscall_call"}) {
    GVirt addr = kernel.symbols.must_addr(fn);
    EXPECT_EQ(current_byte(addr),
              sys_.hv().pristine_read8(addr)) << fn;
  }
  engine_.force_activate(core::kFullKernelViewId);
}

TEST_F(EngineFixture, SwitchesOnGuestContextSwitches) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("top", view);

  apps::AppScenario top = apps::make_app("top", 6);
  u32 pid = sys_.os().spawn("top", top.model);
  top.install_environment(sys_.os());
  sys_.run_until_exit(pid, 600'000'000);

  EXPECT_GT(engine_.stats().context_switch_traps, 10u);
  EXPECT_GT(engine_.stats().resume_traps, 0u);
  EXPECT_GT(engine_.stats().view_switches, 1u);
  EXPECT_GT(engine_.stats().switch_cycles_charged, 0u);
  // After the workload, the idle task (full view) is current again.
  EXPECT_EQ(engine_.active_view_id(), core::kFullKernelViewId);
}

TEST_F(EngineFixture, SameViewOptimizationSkipsSwitches) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("gzip"));
  engine_.bind("gzip", view);
  // Two gzip processes sharing one view.
  apps::AppScenario a = apps::make_app("gzip", 6);
  apps::AppScenario b = apps::make_app("gzip", 6);
  u32 p1 = sys_.os().spawn("gzip", a.model);
  u32 p2 = sys_.os().spawn("gzip", b.model);
  sys_.hv().run([&] {
    return sys_.os().task_zombie_or_dead(p1) &&
           sys_.os().task_zombie_or_dead(p2);
  });
  EXPECT_GT(engine_.stats().switches_skipped_same_view, 0u);
}

TEST_F(EngineFixture, UnboundProcessesRunUnderTheFullView) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("top", view);

  // gzip is NOT bound: running it must not create recoveries even though
  // its kernel needs differ from top's view.
  apps::AppScenario gzip = apps::make_app("gzip", 6);
  u32 pid = sys_.os().spawn("gzip", gzip.model);
  sys_.run_until_exit(pid, 600'000'000);
  EXPECT_EQ(engine_.recovery_log().size(), 0u);
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(pid));
}

TEST_F(EngineFixture, HotUnloadWhileActiveRevertsToFullView) {
  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt probe = kernel.symbols.must_addr("udp_recvmsg");
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.force_activate(view);
  ASSERT_NE(current_byte(probe), 0x55);

  engine_.unload_view(view);  // §III-B4: hot unplug
  EXPECT_EQ(engine_.active_view_id(), core::kFullKernelViewId);
  EXPECT_EQ(current_byte(probe), 0x55);
  EXPECT_EQ(engine_.view_count(), 0u);
}

TEST_F(EngineFixture, DisableRestoresEverything) {
  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt probe = kernel.symbols.must_addr("udp_recvmsg");
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("top", view);
  engine_.force_activate(view);
  engine_.disable();
  EXPECT_EQ(current_byte(probe), 0x55);
  EXPECT_FALSE(engine_.enabled());
  // The guest keeps running normally afterwards.
  apps::AppScenario gzip = apps::make_app("gzip", 4);
  u32 pid = sys_.os().spawn("gzip", gzip.model);
  EXPECT_NE(sys_.run_until_exit(pid, 600'000'000),
            hv::RunOutcome::kGuestFault);
}

TEST_F(EngineFixture, RebindSwitchesSelectors) {
  engine_.enable();
  u32 top_view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("worker", top_view);
  engine_.unbind("worker");
  // After unbind, the process runs under the full view: no recoveries.
  apps::AppScenario gzip = apps::make_app("gzip", 4);
  u32 pid = sys_.os().spawn("worker", gzip.model);
  sys_.run_until_exit(pid, 600'000'000);
  EXPECT_EQ(engine_.recovery_log().size(), 0u);
}

TEST_F(EngineFixture, MultipleViewsCoexistAndSwitchPerProcess) {
  engine_.enable();
  engine_.bind("top", engine_.load_view(harness::profile_of("top")));
  engine_.bind("gzip", engine_.load_view(harness::profile_of("gzip")));

  apps::AppScenario top = apps::make_app("top", 6);
  apps::AppScenario gzip = apps::make_app("gzip", 6);
  u32 p1 = sys_.os().spawn("top", top.model);
  u32 p2 = sys_.os().spawn("gzip", gzip.model);
  top.install_environment(sys_.os());
  hv::RunOutcome outcome = sys_.hv().run([&] {
    return sys_.os().task_zombie_or_dead(p1) &&
           sys_.os().task_zombie_or_dead(p2);
  });
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  // Both completed under enforcement with at most benign recoveries.
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(p1));
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(p2));
  EXPECT_GT(engine_.stats().view_switches, 4u);
}

TEST_F(EngineFixture, SwitchCostsScaleWithEptWrites) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  Cycles before = engine_.stats().switch_cycles_charged;
  engine_.force_activate(view);
  Cycles first = engine_.stats().switch_cycles_charged - before;
  const cpu::PerfModel& pm = sys_.vcpu().perf_model();
  // At least: base-kernel PDE writes + TLB flush.
  EXPECT_GE(first, 2u * pm.cost_ept_pde_write + pm.cost_tlb_flush);
  // Same-view skip charges nothing.
  before = engine_.stats().switch_cycles_charged;
  engine_.force_activate(view);
  EXPECT_EQ(engine_.stats().switch_cycles_charged, before);
}

}  // namespace
}  // namespace fc
