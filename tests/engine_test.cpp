// FACE-CHANGE engine tests (Algorithm 1): view switching at the guest's
// context switches, deferral to resume-userspace, same-view optimization,
// selectors, hot load/unload, EPT state transitions, and cost accounting.
#include <gtest/gtest.h>

#include <span>

#include "harness/harness.hpp"
#include "hv/guest_abi.hpp"

namespace fc {
namespace {

using mem::GuestLayout;

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : engine_(sys_.hv(), sys_.os().kernel()) {}

  u8 current_byte(GVirt va) {
    return sys_.hv().machine().pread8(GuestLayout::kernel_pa(va));
  }

  harness::GuestSystem sys_;
  core::FaceChangeEngine engine_;
};

TEST_F(EngineFixture, ForceActivateRedirectsKernelCode) {
  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt probe = kernel.symbols.must_addr("udp_recvmsg");
  u8 pristine = current_byte(probe);
  EXPECT_EQ(pristine, 0x55);  // prologue

  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.force_activate(view);
  // top never touches UDP: through the EPT the same VA now reads UD2.
  EXPECT_EQ(current_byte(probe) == 0x0F || current_byte(probe) == 0x0B, true);
  EXPECT_EQ(engine_.active_view_id(), view);

  engine_.force_activate(core::kFullKernelViewId);
  EXPECT_EQ(current_byte(probe), 0x55);
}

TEST_F(EngineFixture, ProfiledCodeIsPresentInTheActiveView) {
  const os::KernelImage& kernel = sys_.os().kernel();
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.force_activate(view);
  // Code top DOES use is byte-identical to the pristine kernel.
  for (const char* fn : {"proc_reg_read", "sys_nanosleep", "tty_write",
                         "schedule", "syscall_call"}) {
    GVirt addr = kernel.symbols.must_addr(fn);
    EXPECT_EQ(current_byte(addr),
              sys_.hv().pristine_read8(addr)) << fn;
  }
  engine_.force_activate(core::kFullKernelViewId);
}

TEST_F(EngineFixture, SwitchesOnGuestContextSwitches) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("top", view);

  apps::AppScenario top = apps::make_app("top", 6);
  u32 pid = sys_.os().spawn("top", top.model);
  top.install_environment(sys_.os());
  sys_.run_until_exit(pid, 600'000'000);

  EXPECT_GT(engine_.stats().context_switch_traps, 10u);
  EXPECT_GT(engine_.stats().resume_traps, 0u);
  EXPECT_GT(engine_.stats().view_switches(), 1u);
  EXPECT_GT(engine_.stats().switch_cycles_charged, 0u);
  // After the workload, the idle task (full view) is current again.
  EXPECT_EQ(engine_.active_view_id(), core::kFullKernelViewId);
}

TEST_F(EngineFixture, SameViewOptimizationSkipsSwitches) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("gzip"));
  engine_.bind("gzip", view);
  // Two gzip processes sharing one view.
  apps::AppScenario a = apps::make_app("gzip", 6);
  apps::AppScenario b = apps::make_app("gzip", 6);
  u32 p1 = sys_.os().spawn("gzip", a.model);
  u32 p2 = sys_.os().spawn("gzip", b.model);
  sys_.hv().run([&] {
    return sys_.os().task_zombie_or_dead(p1) &&
           sys_.os().task_zombie_or_dead(p2);
  });
  EXPECT_GT(engine_.stats().switches_skipped_same_view, 0u);
}

TEST_F(EngineFixture, UnboundProcessesRunUnderTheFullView) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("top", view);

  // gzip is NOT bound: running it must not create recoveries even though
  // its kernel needs differ from top's view.
  apps::AppScenario gzip = apps::make_app("gzip", 6);
  u32 pid = sys_.os().spawn("gzip", gzip.model);
  sys_.run_until_exit(pid, 600'000'000);
  EXPECT_EQ(engine_.recovery_log().size(), 0u);
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(pid));
}

TEST_F(EngineFixture, HotUnloadWhileActiveRevertsToFullView) {
  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt probe = kernel.symbols.must_addr("udp_recvmsg");
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.force_activate(view);
  ASSERT_NE(current_byte(probe), 0x55);

  engine_.unload_view(view);  // §III-B4: hot unplug
  EXPECT_EQ(engine_.active_view_id(), core::kFullKernelViewId);
  EXPECT_EQ(current_byte(probe), 0x55);
  EXPECT_EQ(engine_.view_count(), 0u);
}

TEST_F(EngineFixture, DisableRestoresEverything) {
  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt probe = kernel.symbols.must_addr("udp_recvmsg");
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("top", view);
  engine_.force_activate(view);
  engine_.disable();
  EXPECT_EQ(current_byte(probe), 0x55);
  EXPECT_FALSE(engine_.enabled());
  // The guest keeps running normally afterwards.
  apps::AppScenario gzip = apps::make_app("gzip", 4);
  u32 pid = sys_.os().spawn("gzip", gzip.model);
  EXPECT_NE(sys_.run_until_exit(pid, 600'000'000),
            hv::RunOutcome::kGuestFault);
}

TEST_F(EngineFixture, RebindSwitchesSelectors) {
  engine_.enable();
  u32 top_view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("worker", top_view);
  engine_.unbind("worker");
  // After unbind, the process runs under the full view: no recoveries.
  apps::AppScenario gzip = apps::make_app("gzip", 4);
  u32 pid = sys_.os().spawn("worker", gzip.model);
  sys_.run_until_exit(pid, 600'000'000);
  EXPECT_EQ(engine_.recovery_log().size(), 0u);
}

TEST_F(EngineFixture, MultipleViewsCoexistAndSwitchPerProcess) {
  engine_.enable();
  engine_.bind("top", engine_.load_view(harness::profile_of("top")));
  engine_.bind("gzip", engine_.load_view(harness::profile_of("gzip")));

  apps::AppScenario top = apps::make_app("top", 6);
  apps::AppScenario gzip = apps::make_app("gzip", 6);
  u32 p1 = sys_.os().spawn("top", top.model);
  u32 p2 = sys_.os().spawn("gzip", gzip.model);
  top.install_environment(sys_.os());
  hv::RunOutcome outcome = sys_.hv().run([&] {
    return sys_.os().task_zombie_or_dead(p1) &&
           sys_.os().task_zombie_or_dead(p2);
  });
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  // Both completed under enforcement with at most benign recoveries.
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(p1));
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(p2));
  EXPECT_GT(engine_.stats().view_switches(), 4u);
}

TEST_F(EngineFixture, SwitchCostsScaleWithEptWrites) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  Cycles before = engine_.stats().switch_cycles_charged;
  engine_.force_activate(view);
  Cycles first = engine_.stats().switch_cycles_charged - before;
  const cpu::PerfModel& pm = sys_.vcpu().perf_model();
  // At least: base-kernel PDE writes + the scoped-invalidation base cost —
  // and strictly less than a full flush alone would have charged.
  EXPECT_GE(first, 2u * pm.cost_ept_pde_write + pm.cost_tlb_scoped_base);
  EXPECT_LT(first, pm.cost_tlb_flush);
  // Same-view skip charges nothing.
  before = engine_.stats().switch_cycles_charged;
  engine_.force_activate(view);
  EXPECT_EQ(engine_.stats().switch_cycles_charged, before);
}

TEST(EngineNaive, NaiveSwitchCostsIncludeFullFlush) {
  harness::GuestSystem sys;
  core::EngineOptions opts;
  opts.delta_switch_fastpath = false;
  opts.scoped_tlb_invalidation = false;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel(), opts);
  engine.enable();
  u32 view = engine.load_view(harness::profile_of("top"));
  Cycles before = engine.stats().switch_cycles_charged;
  engine.force_activate(view);
  Cycles first = engine.stats().switch_cycles_charged - before;
  const cpu::PerfModel& pm = sys.vcpu().perf_model();
  // The naive rewrite pays base-kernel PDE writes + a full TLB flush.
  EXPECT_GE(first, 2u * pm.cost_ept_pde_write + pm.cost_tlb_flush);
  EXPECT_EQ(engine.stats().slowpath_switches, 1u);
  EXPECT_EQ(engine.stats().fastpath_switches, 0u);
  engine.force_activate(core::kFullKernelViewId);
}

TEST_F(EngineFixture, DescriptorCacheHitsOnRepeatedTransitions) {
  engine_.enable();
  u32 a = engine_.load_view(harness::profile_of("top"));
  u32 b = engine_.load_view(harness::profile_of("gzip"));
  engine_.force_activate(a);  // (full, a) — miss
  engine_.force_activate(b);  // (a, b)    — miss
  engine_.force_activate(a);  // (b, a)    — miss
  engine_.force_activate(b);  // (a, b)    — hit
  EXPECT_EQ(engine_.stats().descriptor_cache_misses, 3u);
  EXPECT_EQ(engine_.stats().descriptor_cache_hits, 1u);
  EXPECT_EQ(engine_.stats().fastpath_switches, 4u);
  engine_.force_activate(core::kFullKernelViewId);
}

TEST_F(EngineFixture, FastPathIssuesFewerWritesThanNaive) {
  engine_.enable();
  u32 a = engine_.load_view(harness::profile_of("top"));
  u32 b = engine_.load_view(harness::profile_of("gzip"));
  engine_.force_activate(a);

  const mem::Ept& ept = sys_.hv().machine().ept();
  mem::Ept::Stats s0 = ept.stats();
  engine_.force_activate(b);
  engine_.force_activate(a);
  mem::Ept::Stats s1 = ept.stats();
  u64 issued = (s1.pde_writes - s0.pde_writes) +
               (s1.pte_writes - s0.pte_writes);

  const core::SwitchDescriptor& ab = engine_.switch_descriptor(a, b);
  const core::SwitchDescriptor& ba = engine_.switch_descriptor(b, a);
  u64 naive = ab.naive_pde_writes + ab.naive_pte_writes +
              ba.naive_pde_writes + ba.naive_pte_writes;
  // Both views shadow the same unlisted modules, so restore+apply pairs
  // coalesce: the delta must be strictly smaller than the full rewrite.
  EXPECT_LT(issued, naive);
  EXPECT_GT(engine_.stats().naive_pte_writes_avoided, 0u);
  engine_.force_activate(core::kFullKernelViewId);
}

TEST_F(EngineFixture, FastPathUsesScopedInvalidation) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  u64 g0 = sys_.hv().machine().ept().generation();
  engine_.force_activate(view);
  engine_.force_activate(core::kFullKernelViewId);
  EXPECT_EQ(engine_.stats().scoped_invalidations, 2u);
  EXPECT_EQ(engine_.stats().full_flush_fallbacks, 0u);
  // Scoped invalidation must not shoot down unrelated translations: the
  // global EPT generation stays put.
  EXPECT_EQ(sys_.hv().machine().ept().generation(), g0);
  EXPECT_EQ(sys_.hv().machine().ept().stats().scoped_invalidations, 2u);
}

// Regression (satellite): disable() used to leave pending_view_ armed, so a
// later enable() applied a view deferred during the *previous* enforcement
// window at its first resume-userspace trap.
TEST_F(EngineFixture, DisableClearsPendingDeferredSwitch) {
  engine_.enable();
  u32 view = engine_.load_view(harness::profile_of("top"));
  engine_.bind("top", view);

  apps::AppScenario top = apps::make_app("top", 4);
  u32 pid = sys_.os().spawn("top", top.model);
  const os::KernelImage& kernel = sys_.os().kernel();

  // Arm a deferred switch exactly as the context-switch trap does: the
  // incoming task pointer rides in the __switch_to argument register.
  sys_.vcpu().regs()[isa::Reg::B] = abi::Task::addr(pid);
  engine_.handle_breakpoint(kernel.symbols.must_addr("__switch_to"));

  engine_.disable();
  engine_.enable();
  // A resume trap in the new window must not apply the stale pending view.
  engine_.handle_breakpoint(kernel.symbols.must_addr("resume_userspace"));
  EXPECT_EQ(engine_.active_view_id(), core::kFullKernelViewId);
  engine_.disable();
}

// Regression (satellite): apply_view used to restore the outgoing view's
// module-PTE overrides *after* repointing the base-kernel PDEs, writing the
// identity frame into the *incoming* view's table. Visible whenever a module
// override falls inside the repointed base-kernel PDE range and the incoming
// view does not re-override the same slot.
TEST(EngineRegression, ModuleOverrideInsideBasePdeRangeSurvivesSwitch) {
  for (bool fastpath : {true, false}) {
    harness::GuestSystem sys;
    core::EngineOptions opts;
    opts.delta_switch_fastpath = fastpath;
    opts.scoped_tlb_invalidation = fastpath;
    opts.builder.shadow_unlisted_modules = false;
    core::FaceChangeEngine engine(sys.hv(), sys.os().kernel(), opts);
    mem::Machine& machine = sys.hv().machine();
    const os::KernelImage& kernel = sys.os().kernel();

    // Fabricate a guest module whose code page lies inside base kernel
    // text, i.e. inside the PDE range that step 3A repoints.
    GVirt probe = kernel.symbols.must_addr("udp_recvmsg");
    ASSERT_EQ(machine.pread8(GuestLayout::kernel_pa(probe)), 0x55);
    GVirt mod_base = probe & ~static_cast<GVirt>(kPageMask);
    GPhys node_pa = machine.alloc_phys_pages(
        1, GuestLayout::kKernelHeapPhys, GuestLayout::kUserPhys);
    machine.pwrite32(node_pa + abi::ModuleNode::kNext,
                     sys.hv().vmi().read_u32(abi::kModuleListAddr));
    machine.pwrite32(node_pa + abi::ModuleNode::kBase, mod_base);
    machine.pwrite32(node_pa + abi::ModuleNode::kSizeField, kPageSize);
    const char name[] = "fakemod";
    machine.pwrite_bytes(node_pa + abi::ModuleNode::kName,
                         std::span<const u8>(
                             reinterpret_cast<const u8*>(name), sizeof(name)));
    machine.pwrite32(GuestLayout::kernel_pa(abi::kModuleListAddr),
                     GuestLayout::kernel_va(node_pa));

    engine.enable();
    core::KernelViewConfig cfg_a;
    cfg_a.app_name = "lists-fakemod";
    cfg_a.modules["fakemod"];  // listed, nothing profiled → all-UD2 shadow
    u32 view_a = engine.load_view(cfg_a);
    core::KernelViewConfig cfg_b;
    cfg_b.app_name = "empty";
    u32 view_b = engine.load_view(cfg_b);

    engine.force_activate(view_a);
    engine.force_activate(view_b);
    // B's own UD2 shadow must be visible; the bug leaked A's identity
    // (pristine 0x55) restore into B's freshly activated table.
    u8 seen = machine.pread8(GuestLayout::kernel_pa(probe));
    EXPECT_TRUE(seen == 0x0F || seen == 0x0B)
        << "fastpath=" << fastpath << " saw " << static_cast<u32>(seen);

    engine.force_activate(core::kFullKernelViewId);
    EXPECT_EQ(machine.pread8(GuestLayout::kernel_pa(probe)), 0x55);
    engine.disable();
  }
}

// The fast path must leave the EPT in a byte-identical visible state to the
// naive full rewrite across an arbitrary transition sequence, including
// full↔custom transitions and cached-descriptor reuse.
TEST(EngineEquivalence, FastPathMatchesNaiveByteForByte) {
  harness::GuestSystem fast_sys;
  harness::GuestSystem naive_sys;
  core::EngineOptions naive_opts;
  naive_opts.delta_switch_fastpath = false;
  naive_opts.scoped_tlb_invalidation = false;
  core::FaceChangeEngine fast(fast_sys.hv(), fast_sys.os().kernel());
  core::FaceChangeEngine naive(naive_sys.hv(), naive_sys.os().kernel(),
                               naive_opts);

  auto visible_code = [](harness::GuestSystem& sys) {
    // Everything a kernel view can redirect: base kernel code plus the
    // module pages named by the guest module list, read through the EPT.
    mem::Machine& machine = sys.hv().machine();
    std::vector<u8> out(GuestLayout::kKernelCodeMax);
    machine.pread_bytes(GuestLayout::kKernelCodePhys, out);
    for (const hv::ModuleInfo& mod : sys.hv().vmi().module_list()) {
      GPhys lo = GuestLayout::kernel_pa(mod.base) & ~static_cast<GPhys>(kPageMask);
      GPhys hi = (GuestLayout::kernel_pa(mod.base) + mod.size + kPageMask) &
                 ~static_cast<GPhys>(kPageMask);
      std::vector<u8> page(hi - lo);
      machine.pread_bytes(lo, page);
      out.insert(out.end(), page.begin(), page.end());
    }
    return out;
  };

  fast.enable();
  naive.enable();
  u32 fa = fast.load_view(harness::profile_of("top"));
  u32 fb = fast.load_view(harness::profile_of("gzip"));
  u32 na = naive.load_view(harness::profile_of("top"));
  u32 nb = naive.load_view(harness::profile_of("gzip"));
  ASSERT_EQ(fa, na);
  ASSERT_EQ(fb, nb);

  const u32 kFull = core::kFullKernelViewId;
  // Covers full→custom, custom→custom both directions, custom→full, and
  // revisits so cached descriptors get exercised.
  for (u32 target : {fa, fb, fa, kFull, fb, fa, fb, kFull}) {
    fast.force_activate(target);
    naive.force_activate(target);
    ASSERT_EQ(visible_code(fast_sys), visible_code(naive_sys))
        << "divergence after switching to view " << target;
  }
  EXPECT_GT(fast.stats().fastpath_switches, 0u);
  EXPECT_GT(naive.stats().slowpath_switches, 0u);
}

}  // namespace
}  // namespace fc
