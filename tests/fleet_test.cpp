// Fleet tests: COW frame-sharing semantics (store dedup, same-value write
// suppression, promotion), the shared-image byte-equivalence regression
// (a clone VM rehydrated from a SharedImage is byte-identical to a VM that
// assembled everything from scratch), COW/block-cache isolation across VMs
// (one VM's recovery promotes only its own frames and bumps only its own
// generations), the FCFL merged-trace container round trip, and the fleet
// determinism contract (merged report and trace byte-identical at jobs
// 1/4/8).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "fleet/fleet.hpp"
#include "fleet/work_steal.hpp"
#include "harness/harness.hpp"
#include "mem/shared_frames.hpp"
#include "obs/trace.hpp"
#include "vcpu/vcpu.hpp"

namespace fc::fleet {
namespace {

/// One small two-app image per process: building it profiles the apps and
/// boots a template, which dominates this suite's runtime.
const core::SharedImage& test_image() {
  static std::unique_ptr<core::SharedImage> image = [] {
    harness::SharedImageOptions options;
    options.apps = {"gzip", "top"};
    options.profile_iterations = 5;
    return harness::build_shared_image(options);
  }();
  return *image;
}

// ---------------------------------------------------------------------------
// COW primitives.
// ---------------------------------------------------------------------------

TEST(SharedFrameStore, DedupsIdenticalPages) {
  mem::SharedFrameStore store;
  std::vector<u8> a(kPageSize, 0xAA);
  std::vector<u8> b(kPageSize, 0xBB);
  u32 ida = store.add_page(a);
  EXPECT_EQ(store.add_page(a), ida);  // identical bytes → same id
  u32 idb = store.add_page(b);
  EXPECT_NE(idb, ida);
  EXPECT_EQ(store.page_count(), 2u);
  store.freeze();
  EXPECT_EQ(std::memcmp(store.page_data(ida), a.data(), kPageSize), 0);
}

TEST(CowHostMemory, SameValueWritesAreSuppressedDivergentWritesPromote) {
  mem::SharedFrameStore store;
  std::vector<u8> page(kPageSize, 0x55);
  u32 id = store.add_page(page);
  store.freeze();

  mem::HostMemory host;
  host.attach_store(&store);
  HostFrame f = host.adopt_shared(id);
  ASSERT_TRUE(host.is_shared(f));

  // Same-value writes leave the frame shared (a clone replaying its boot).
  host.write8(f, 100, 0x55);
  host.write32(f, 200, 0x55555555u);
  EXPECT_TRUE(host.is_shared(f));
  EXPECT_EQ(host.cow_suppressed_writes(), 2u);
  EXPECT_EQ(host.cow_promotions(), 0u);

  // First divergent write promotes; bytes and frame number are preserved.
  host.write8(f, 100, 0x66);
  EXPECT_TRUE(host.is_private(f));
  EXPECT_EQ(host.cow_promotions(), 1u);
  EXPECT_EQ(host.read8(f, 100), 0x66);
  EXPECT_EQ(host.read8(f, 101), 0x55);  // rest of the page copied over
  // The store page itself is untouched.
  EXPECT_EQ(store.page_data(id)[100], 0x55);

  // Zero-backed frames materialize on first non-zero write only.
  HostFrame z = host.alloc_frame();
  EXPECT_TRUE(host.is_zero_backed(z));
  host.write8(z, 0, 0);  // zero into zero: suppressed
  EXPECT_TRUE(host.is_zero_backed(z));
  host.write8(z, 0, 7);
  EXPECT_TRUE(host.is_private(z));
  host.zero_frame(z);
  EXPECT_TRUE(host.is_zero_backed(z));
  EXPECT_EQ(host.read8(z, 0), 0);
}

// ---------------------------------------------------------------------------
// Shared-image rehydration: byte equivalence with a from-scratch build.
// ---------------------------------------------------------------------------

TEST(SharedImage, CloneIsByteIdenticalToFreshBuild) {
  const core::SharedImage& image = test_image();

  harness::GuestSystem fresh({}, harness::GuestSystem::FreshBoot{});
  core::FaceChangeEngine fresh_engine(fresh.hv(), fresh.os().kernel());
  fresh_engine.enable();
  for (const core::SharedView& sv : image.views)
    fresh_engine.load_view(sv.config);

  harness::GuestSystem clone({}, image);
  core::FaceChangeEngine clone_engine(clone.hv(), clone.os().kernel());
  clone_engine.enable();
  clone_engine.adopt_shared_views(image);

  const mem::HostMemory& fh = fresh.hv().machine().host();
  const mem::HostMemory& ch = clone.hv().machine().host();
  ASSERT_EQ(fh.frame_count(), ch.frame_count());
  u32 diverged = 0;
  for (HostFrame f = 0; f < fh.frame_count(); ++f) {
    const mem::HostMemory& cfh = fh;
    const mem::HostMemory& cch = ch;
    if (std::memcmp(cfh.frame(f).data(), cch.frame(f).data(), kPageSize) != 0)
      ++diverged;
  }
  EXPECT_EQ(diverged, 0u);
  // Most of the clone's frames never left the shared store.
  EXPECT_GT(ch.frame_count() - ch.private_frame_count(),
            ch.frame_count() / 2);
}

TEST(SharedImage, CloneRunsAppIdenticallyToFreshBuild) {
  const core::SharedImage& image = test_image();
  auto run = [&](bool shared) {
    std::unique_ptr<harness::GuestSystem> sys;
    if (shared) {
      sys = std::make_unique<harness::GuestSystem>(os::OsConfig{}, image);
    } else {
      sys = std::make_unique<harness::GuestSystem>(
          os::OsConfig{}, harness::GuestSystem::FreshBoot{});
    }
    core::FaceChangeEngine engine(sys->hv(), sys->os().kernel());
    engine.enable();
    if (shared) {
      engine.adopt_shared_views(image);
    } else {
      for (const core::SharedView& sv : image.views)
        engine.load_view(sv.config);
      if (!image.audit.empty()) engine.install_static_audit(image.audit);
    }
    engine.bind("gzip", 1);
    apps::AppScenario scenario = apps::make_app("gzip", 3);
    u32 pid = sys->os().spawn("gzip", scenario.model);
    scenario.install_environment(sys->os());
    EXPECT_NE(sys->run_until_exit(pid, 300'000'000ull),
              hv::RunOutcome::kGuestFault);
    return std::pair<u64, u64>(sys->vcpu().instructions_retired(),
                               engine.recovery_stats().recoveries);
  };
  auto [fresh_insns, fresh_recoveries] = run(false);
  auto [clone_insns, clone_recoveries] = run(true);
  EXPECT_EQ(fresh_insns, clone_insns);
  EXPECT_EQ(fresh_recoveries, clone_recoveries);
  EXPECT_GT(clone_insns, 0u);
}

// ---------------------------------------------------------------------------
// COW ↔ block cache: cross-VM isolation.
// ---------------------------------------------------------------------------

TEST(CowBlockCache, RecoveryInOneVmDoesNotTouchAnotherVmsFramesOrBlocks) {
  const core::SharedImage& image = test_image();

  // `view_app` selects which app's view the process is bound to; binding A
  // to the *other* app's view guarantees UD2 traps → recoveries → writes
  // into COW-shared shadow pages.
  auto make_vm = [&](const std::string& app, const std::string& view_app) {
    struct Vm {
      std::unique_ptr<harness::GuestSystem> sys;
      std::unique_ptr<core::FaceChangeEngine> engine;
      u32 pid = 0;
    };
    Vm vm;
    vm.sys = std::make_unique<harness::GuestSystem>(os::OsConfig{}, image);
    vm.engine = std::make_unique<core::FaceChangeEngine>(
        vm.sys->hv(), vm.sys->os().kernel());
    vm.engine->enable();
    vm.engine->adopt_shared_views(image);
    u32 view_id = 0;
    for (u32 i = 0; i < image.views.size(); ++i)
      if (image.views[i].config.app_name == view_app) view_id = i + 1;
    vm.engine->bind(app, view_id);
    apps::AppScenario scenario = apps::make_app(app, 3);
    vm.pid = vm.sys->os().spawn(app, scenario.model);
    scenario.install_environment(vm.sys->os());
    return vm;
  };

  auto a = make_vm("gzip", "top");
  auto b = make_vm("gzip", "gzip");
  auto control = make_vm("gzip", "gzip");

  // B runs long enough to warm its block cache and touch its views.
  a.sys->hv();  // (A untouched so far)
  b.sys->run_for(2'000'000);
  control.sys->run_for(2'000'000);

  const mem::HostMemory& bh = b.sys->hv().machine().host();
  const u32 frames = bh.frame_count();
  std::vector<u32> b_gen(frames);
  std::vector<u8> b_shared(frames);
  for (HostFrame f = 0; f < frames; ++f) {
    b_gen[f] = b.sys->vcpu().block_cache().frame_generation(f);
    b_shared[f] = bh.is_shared(f) ? 1 : 0;
  }

  // A runs to completion: its recoveries rewrite UD2 shadow pages, which
  // are COW-shared with B.
  ASSERT_NE(a.sys->run_until_exit(a.pid, 300'000'000ull),
            hv::RunOutcome::kGuestFault);
  const mem::HostMemory& ah = a.sys->hv().machine().host();
  EXPECT_GT(a.engine->recovery_stats().recoveries, 0u);
  EXPECT_GT(ah.cow_promotions(), 0u);

  // Every frame A promoted that B still shares: untouched in B — same
  // bytes as the store page, same (zero) block-cache generation delta.
  u32 checked = 0;
  for (HostFrame f = 0; f < frames; ++f) {
    if (!ah.is_private(f) || b_shared[f] == 0) continue;
    ASSERT_TRUE(bh.is_shared(f)) << "frame " << f << " unshared in B";
    EXPECT_EQ(b.sys->vcpu().block_cache().frame_generation(f), b_gen[f])
        << "A's recovery bumped B's generation for frame " << f;
    EXPECT_EQ(std::memcmp(bh.frame(f).data(),
                          image.store.page_data(bh.shared_backing(f)),
                          kPageSize),
              0);
    ++checked;
  }
  EXPECT_GT(checked, 0u);  // the scenario really exercised shared frames

  // B finishes exactly as the control VM that never shared time with A.
  ASSERT_NE(b.sys->run_until_exit(b.pid, 300'000'000ull),
            hv::RunOutcome::kGuestFault);
  ASSERT_NE(control.sys->run_until_exit(control.pid, 300'000'000ull),
            hv::RunOutcome::kGuestFault);
  EXPECT_EQ(b.sys->vcpu().instructions_retired(),
            control.sys->vcpu().instructions_retired());
  EXPECT_EQ(b.engine->recovery_stats().recoveries,
            control.engine->recovery_stats().recoveries);
}

// ---------------------------------------------------------------------------
// FCFL container round trip.
// ---------------------------------------------------------------------------

TEST(FleetTrace, ContainerRoundTrips) {
  FleetReport report;
  report.vms.resize(3);
  report.vms[0].vm = 0;
  report.vms[0].trace = {1, 2, 3, 4};
  report.vms[1].vm = 1;  // empty trace stays representable
  report.vms[2].vm = 2;
  report.vms[2].trace = {9, 8};

  std::vector<u8> merged = report.merged_trace();
  ASSERT_TRUE(is_fleet_trace(merged));
  std::vector<std::pair<u32, std::vector<u8>>> streams;
  ASSERT_TRUE(parse_fleet_trace(merged, &streams));
  ASSERT_EQ(streams.size(), 3u);
  EXPECT_EQ(streams[0].first, 0u);
  EXPECT_EQ(streams[0].second, (std::vector<u8>{1, 2, 3, 4}));
  EXPECT_TRUE(streams[1].second.empty());
  EXPECT_EQ(streams[2].second, (std::vector<u8>{9, 8}));

  // Truncation is detected, not misparsed.
  merged.pop_back();
  EXPECT_FALSE(parse_fleet_trace(merged, &streams));
  EXPECT_FALSE(is_fleet_trace({1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler.
// ---------------------------------------------------------------------------

TEST(WorkStealing, SingleThiefDrainsEveryItemExactlyOnce) {
  // Worker 2 never touches its own seed through next(0): everything worker
  // 0 gets beyond its own chunk arrives by steal-half.
  WorkStealingQueues queue(3, 10);
  std::vector<u32> claimed;
  for (u32 item = 0; queue.next(0, &item);) claimed.push_back(item);
  ASSERT_EQ(claimed.size(), 10u);
  std::vector<u32> sorted = claimed;
  std::sort(sorted.begin(), sorted.end());
  for (u32 i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);  // each exactly once
  EXPECT_GT(queue.stolen(), 0u);
  u32 ignored = 0;
  EXPECT_FALSE(queue.next(1, &ignored));  // nothing left for anyone
}

TEST(FleetWorkStealing, UnevenFleetMatchesSerialRunByteForByte) {
  const core::SharedImage& image = test_image();
  FleetOptions options;
  options.vms = 13;  // does not divide 5: uneven chunks force steals
  options.jobs = 5;
  options.iterations = 1;
  FleetReport stolen = FleetRunner(image, options).run();
  ASSERT_EQ(stolen.vms.size(), 13u);
  for (u32 i = 0; i < 13; ++i) {
    EXPECT_EQ(stolen.vms[i].vm, i) << "vm " << i << " never ran";
    EXPECT_GT(stolen.vms[i].instructions, 0u);
  }
  options.jobs = 1;
  FleetReport serial = FleetRunner(image, options).run();
  EXPECT_EQ(serial.to_json(), stolen.to_json());
}

// ---------------------------------------------------------------------------
// Report JSON hygiene.
// ---------------------------------------------------------------------------

TEST(FleetReport, JsonEscapesAppStrings) {
  FleetReport report;
  report.vms.resize(1);
  report.vms[0].vm = 0;
  report.vms[0].app = "ev\"il\\app\nname";
  std::string json = report.to_json();
  // The raw quote/backslash/newline must not reach the JSON unescaped.
  EXPECT_NE(json.find("\"app\":\"ev\\\"il\\\\app\\nname\""),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Recorder quarantine: inline VM runs must not leak into the caller's ring.
// ---------------------------------------------------------------------------

TEST(FleetRecorder, CallerRecorderSurvivesInlineVmRuns) {
  const core::SharedImage& image = test_image();
  obs::Recorder& rec = obs::recorder();
  Cycles fake_clock = 42;  // a clock the test owns (never dangles)
  rec.set_clock(&fake_clock);
  rec.set_cycles_per_second(123);
  rec.set_capacity(1u << 8);
  rec.start();
  rec.emit(obs::EventKind::kTaskSpawn, 0, 0, 7, 0, 0, 0);
  const std::size_t events_before = rec.size();
  ASSERT_EQ(events_before, 1u);

  // jobs=1 runs both VMs on THIS thread; without the quarantine their boot
  // and runtime events would land in (and overflow) the caller's ring.
  FleetOptions options;
  options.vms = 2;
  options.jobs = 1;
  options.iterations = 1;
  options.capture_traces = false;
  FleetReport report = FleetRunner(image, options).run();
  for (const VmResult& vm : report.vms) {
    EXPECT_GT(vm.instructions, 0u);
    EXPECT_TRUE(vm.trace.empty());
  }

  EXPECT_TRUE(rec.capturing());          // capture resumed...
  EXPECT_EQ(rec.size(), events_before);  // ...with no fleet events absorbed
  EXPECT_EQ(rec.clock(), &fake_clock);   // not left at a destroyed vCPU
  EXPECT_EQ(rec.cycles_per_second(), 123u);
  EXPECT_EQ(rec.capacity(), 1u << 8);

  // Still usable afterwards: the next caller event records normally.
  rec.emit(obs::EventKind::kTaskSpawn, 0, 0, 8, 0, 0, 0);
  EXPECT_EQ(rec.size(), events_before + 1);
  EXPECT_EQ(rec.snapshot().back().when, 42u);

  // capture_traces=true repurposes the ring for the VMs but must still hand
  // the caller's configuration (clock, rate, capacity, enablement) back.
  options.capture_traces = true;
  options.trace_capacity = 1u << 12;
  report = FleetRunner(image, options).run();
  for (const VmResult& vm : report.vms) EXPECT_FALSE(vm.trace.empty());
  EXPECT_TRUE(rec.capturing());
  EXPECT_EQ(rec.clock(), &fake_clock);
  EXPECT_EQ(rec.cycles_per_second(), 123u);
  EXPECT_EQ(rec.capacity(), 1u << 8);

  rec.stop();
  rec.clear();
  rec.set_clock(nullptr);
  rec.set_cycles_per_second(100'000'000);
  rec.set_capacity(obs::Recorder::kDefaultCapacity);
}

// ---------------------------------------------------------------------------
// Fleet determinism: jobs must not change the merged report or trace.
// ---------------------------------------------------------------------------

TEST(FleetDeterminism, ReportAndTraceByteIdenticalAcrossJobs) {
  const core::SharedImage& image = test_image();

  auto run = [&](u32 jobs) {
    FleetOptions options;
    options.vms = 8;
    options.jobs = jobs;
    options.iterations = 2;
    options.capture_traces = true;
    options.trace_capacity = 1u << 12;
    FleetRunner runner(image, options);
    FleetReport report = runner.run();
    for (const VmResult& vm : report.vms) {
      EXPECT_FALSE(vm.fault) << "vm " << vm.vm;
      EXPECT_GT(vm.instructions, 0u) << "vm " << vm.vm;
    }
    EXPECT_EQ(report.shared_store_pages, image.store.page_count());
    return std::pair<std::string, std::vector<u8>>(report.to_json(),
                                                   report.merged_trace());
  };

  auto [json1, trace1] = run(1);
  auto [json4, trace4] = run(4);
  auto [json8, trace8] = run(8);

  EXPECT_EQ(json1, json4);
  EXPECT_EQ(json1, json8);
  EXPECT_EQ(trace1, trace4);
  EXPECT_EQ(trace1, trace8);
  EXPECT_FALSE(trace1.empty());
  EXPECT_NE(json1.find("\"vms\":8"), std::string::npos);
}

}  // namespace
}  // namespace fc::fleet
