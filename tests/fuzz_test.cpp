// Randomized robustness sweeps: the strongest property in the paper's
// design is that kernel code recovery makes view enforcement *transparent*
// — any workload, under any (even completely wrong) view, must behave
// exactly as under the full kernel view, differing only in recovery-log
// noise. These TEST_P sweeps drive randomized syscall workloads under
// deliberately mismatched views and require zero guest faults and
// behavioural equivalence.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

namespace abi = fc::abi;
using os::AppAction;

/// A seeded random workload: opens random files, reads/writes/polls random
/// fds, creates pipes and sockets, sleeps, forks occasionally — weighted so
/// it stays live-locked-free and terminates after `steps`.
class ChaosModel : public os::AppModel {
 public:
  ChaosModel(u64 seed, u32 steps) : rng_(seed), steps_(steps) {}

  AppAction next(u32 last, os::OsRuntime&, u32) override {
    // Harvest fds from the previous syscall.
    switch (want_) {
      case kFile:
        if (last < 64) readable_.push_back(last);
        break;
      case kPipe:
        if (last < 0x40000000) {
          pipes_.push_back({last & 0xFFFF, last >> 16, false});
        }
        break;
      case kSock:
        if (last < 64) sockets_.push_back(last);
        break;
      case kNothing:
        break;
    }
    want_ = kNothing;
    if (done_++ >= steps_) return AppAction::syscall(abi::kSysExit);

    switch (rng_.below(13)) {
      case 0: {
        static constexpr u32 kPaths[] = {
            os::kPathEtcConf, os::kPathDataFile, os::kPathLogFile,
            os::kPathProcStat, os::kPathProcMeminfo, os::kPathMediaFile};
        want_ = kFile;
        return AppAction::syscall(abi::kSysOpen, kPaths[rng_.below(6)], 0);
      }
      case 1:  // read a file fd (ext4/proc: never blocks forever) or tty
        if (!readable_.empty() && rng_.chance(0.8)) {
          return AppAction::syscall(abi::kSysRead, pick(readable_),
                                    1u << rng_.between(4, 13));
        }
        return AppAction::syscall(abi::kSysRead, 0, 8);  // tty (keystrokes)
      case 2:
        return AppAction::syscall(abi::kSysWrite,
                                  readable_.empty() ? 1 : pick(readable_),
                                  1u << rng_.between(4, 12));
      case 3:  // pipe ping: write the pipe, mark it readable
        if (pipes_.empty()) {
          want_ = kPipe;
          return AppAction::syscall(abi::kSysPipe);
        } else {
          PipePair& p = pipes_[rng_.below(static_cast<u32>(pipes_.size()))];
          p.has_data = true;
          return AppAction::syscall(abi::kSysWrite, p.wfd, 64);
        }
      case 4: {  // pipe read, only when data is known to be there
        for (PipePair& p : pipes_) {
          if (p.has_data) {
            p.has_data = false;
            return AppAction::syscall(abi::kSysRead, p.rfd, 4096);
          }
        }
        want_ = kPipe;
        return AppAction::syscall(abi::kSysPipe);
      }
      case 5:
        want_ = kSock;
        return AppAction::syscall(abi::kSysSocket, 2, rng_.between(1, 2));
      case 6:  // socket ops that cannot block forever
        if (!sockets_.empty()) {
          u32 fd = pick(sockets_);
          if (rng_.chance(0.5))
            return AppAction::syscall(abi::kSysBind, fd,
                                      9000 + rng_.below(64));
          return AppAction::syscall(abi::kSysSendto, fd, 256);
        }
        return AppAction::syscall(abi::kSysGetpid);
      case 7:
        return AppAction::syscall(abi::kSysStat, os::kPathEtcConf);
      case 8:
        return AppAction::syscall(abi::kSysNanosleep, 1);
      case 9:
        if (!readable_.empty())
          return AppAction::syscall(abi::kSysGetdents, pick(readable_), 128);
        return AppAction::syscall(abi::kSysUname);
      case 10:
        return AppAction::compute_only(rng_.between(100, 20000));
      case 11:
        return AppAction::syscall(abi::kSysIoctl, 1, 0x5401);
      default:
        return AppAction::syscall(abi::kSysBrk, 4096);
    }
  }

 private:
  struct PipePair {
    u32 rfd, wfd;
    bool has_data;
  };
  enum Pending { kNothing, kFile, kPipe, kSock };
  u32 pick(const std::vector<u32>& v) {
    return v[rng_.below(static_cast<u32>(v.size()))];
  }

  Rng rng_;
  u32 steps_;
  u32 done_ = 0;
  Pending want_ = kNothing;
  std::vector<u32> readable_;
  std::vector<PipePair> pipes_;
  std::vector<u32> sockets_;
};

struct ChaosResult {
  bool completed = false;
  u64 syscalls = 0;
  u64 fs_read = 0, fs_written = 0, tty_written = 0;
};

ChaosResult run_chaos(u64 seed, const core::KernelViewConfig* view) {
  harness::GuestSystem sys;
  std::unique_ptr<core::FaceChangeEngine> engine;
  if (view != nullptr) {
    engine = std::make_unique<core::FaceChangeEngine>(sys.hv(),
                                                      sys.os().kernel());
    engine->enable();
    core::KernelViewConfig cfg = *view;
    cfg.app_name = "chaos";
    engine->bind("chaos", engine->load_view(cfg));
  }
  u32 pid = sys.os().spawn("chaos", std::make_shared<ChaosModel>(seed, 120));
  sys.os().schedule_keystrokes(1'000'000, 300'000, 2000);  // feed tty reads
  hv::RunOutcome outcome = sys.run_until_exit(pid, 2'000'000'000ull);
  ChaosResult result;
  result.completed = outcome != hv::RunOutcome::kGuestFault &&
                     sys.os().task_zombie_or_dead(pid);
  result.syscalls = sys.os().counters().syscalls;
  result.fs_read = sys.os().counters().fs_bytes_read;
  result.fs_written = sys.os().counters().fs_bytes_written;
  result.tty_written = sys.os().counters().tty_bytes_written;
  return result;
}

class ChaosSweep : public ::testing::TestWithParam<u64> {};

TEST_P(ChaosSweep, SurvivesUnderAMismatchedViewWithIdenticalBehaviour) {
  // Baseline: full kernel view.
  ChaosResult full = run_chaos(GetParam(), nullptr);
  ASSERT_TRUE(full.completed);
  ASSERT_GT(full.syscalls, 50u);

  // Under top's view (wrong for almost everything this workload does):
  // recovery must transparently heal every excursion.
  const core::KernelViewConfig& wrong = harness::profile_of("top");
  ChaosResult enforced = run_chaos(GetParam(), &wrong);
  EXPECT_TRUE(enforced.completed);
  EXPECT_EQ(enforced.syscalls, full.syscalls);
  EXPECT_EQ(enforced.fs_read, full.fs_read);
  EXPECT_EQ(enforced.fs_written, full.fs_written);
  EXPECT_EQ(enforced.tty_written, full.tty_written);
}

TEST_P(ChaosSweep, SurvivesUnderAnEmptyView) {
  // The most hostile case: a view containing nothing but the mandatory
  // entry code — every kernel function the workload touches must be
  // recovered on first use.
  harness::GuestSystem probe;
  core::KernelViewConfig empty;
  empty.app_name = "chaos";
  for (const os::FuncMeta& fn : probe.os().kernel().functions) {
    if (fn.subsystem == "entry" || fn.name == "schedule" ||
        fn.name == "__switch_to" || fn.name == "pick_next_task" ||
        fn.name == "update_curr") {
      empty.base.insert(fn.address, fn.address + fn.size);
    }
  }
  ChaosResult enforced = run_chaos(GetParam() ^ 0xABCD, &empty);
  EXPECT_TRUE(enforced.completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Hostile-guest hardening: arbitrary user code bytes — garbage, stray INTs,
// wild pointers — may at worst kill the *guest*; they must never abort the
// simulator, and must never disturb other processes or the enforcement
// engine.
// ---------------------------------------------------------------------------

class HostileGuest : public ::testing::TestWithParam<u64> {};

TEST_P(HostileGuest, RandomBytesAsUserCodeNeverKillTheHost) {
  Rng rng(GetParam());
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("top", engine.load_view(harness::profile_of("top")));

  // A healthy enforced workload shares the machine with the hostile one.
  apps::AppScenario top = apps::make_app("top", 10);
  u32 good = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());

  os::ProgramImage garbage;
  garbage.code.resize(4096);
  for (u8& b : garbage.code) b = static_cast<u8>(rng.next_u32());
  class Never : public os::AppModel {
   public:
    os::AppAction next(u32, os::OsRuntime&, u32) override {
      return os::AppAction::compute_only(100);
    }
  };
  u32 evil = sys.os().spawn("garbage", std::make_shared<Never>(), garbage);

  // Run until the healthy app finishes. The hostile one either faulted (its
  // fault is absorbed: the engine only treats *managed* regions as
  // recoverable; user faults kill the guest run loop) — so run in slices
  // and tolerate kGuestFault exits by terminating the offender.
  const Cycles deadline = sys.vcpu().cycles() + 1'500'000'000ull;
  while (!sys.os().task_zombie_or_dead(good) &&
         sys.vcpu().cycles() < deadline) {
    hv::RunOutcome outcome = sys.hv().run([&] {
      return sys.os().task_zombie_or_dead(good) ||
             sys.vcpu().cycles() >= deadline;
    });
    if (outcome == hv::RunOutcome::kGuestFault) {
      // The hypervisor reported the fault instead of crashing: terminate
      // the offending process and keep the machine alive.
      u32 victim = sys.os().current_pid();
      ASSERT_EQ(victim, evil)
          << "fault attributed to the healthy process";
      sys.os().terminate_task(evil);
    }
  }
  EXPECT_TRUE(sys.os().task_zombie_or_dead(good));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileGuest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fc
