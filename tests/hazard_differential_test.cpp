// Differential validation of the static 0B 0F hazard pass: every *runtime*
// instant recovery (a return target that read the shifted pair 0B 0F) must
// land on a return address the static analyzer enumerated. One false
// negative means a call site the analyzer missed — the lint and the
// baseline would silently understate the hazard surface.
#include <gtest/gtest.h>

#include "analysis/hazards.hpp"
#include "harness/harness.hpp"

namespace fc {
namespace {

namespace abi = fc::abi;
using os::AppAction;

TEST(HazardDifferential, ZeroFalseNegativesAcrossAllApps) {
  u64 total_recoveries = 0;
  const std::vector<std::string>& apps = apps::all_app_names();
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const std::string& app = apps[i];
    // Run under kvm-clock while the profiles were taken under tsc (the
    // paper's benign-recovery mismatch), and — much more aggressively —
    // run each app under the *previous* app's view. The wrong view
    // guarantees coverage gaps on every app, so the differential exercises
    // lazy traps, backtrace walks, and instant recoveries heavily; the
    // workload must still complete transparently.
    os::OsConfig runtime_cfg;
    runtime_cfg.clocksource = 1;
    harness::GuestSystem sys(runtime_cfg);
    analysis::CallGraph graph = harness::build_call_graph(sys);
    core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
    engine.enable();
    core::KernelViewConfig config =
        harness::profile_of(apps[(i + apps.size() - 1) % apps.size()], 15);
    config.app_name = app;
    u32 view = engine.load_view(config);
    engine.bind(app, view);
    core::StaticAudit audit =
        harness::build_static_audit(graph, {{view, config}});
    ASSERT_GT(audit.hazard_returns.size(), 100u);
    engine.install_static_audit(std::move(audit));

    // Longer workload than the profiling run, so coverage gaps trap.
    apps::AppScenario scenario = apps::make_app(app, 40);
    u32 pid = sys.os().spawn(app, scenario.model);
    scenario.install_environment(sys.os());
    EXPECT_NE(sys.run_until_exit(pid, 2'000'000'000ull),
              hv::RunOutcome::kGuestFault)
        << app;

    const core::RecoveryEngine::Stats& stats = engine.recovery_stats();
    total_recoveries += stats.recoveries;
    EXPECT_EQ(stats.instant_off_hazard_set, 0u)
        << app << ": a runtime instant recovery hit a return target the "
        << "static hazard pass did not enumerate (false negative)";
    EXPECT_EQ(stats.instant_recoveries,
              stats.instant_in_hazard_set + stats.instant_off_hazard_set);
    for (GVirt ret : engine.recovery().instant_return_targets()) {
      EXPECT_EQ(ret & 1u, 1u)
          << app << ": instant recovery at an even return address "
          << "contradicts the static hazard criterion";
      EXPECT_TRUE(engine.static_audit().hazard_returns.count(ret) != 0)
          << app << ": " << ret;
    }
  }
  EXPECT_GT(total_recoveries, 0u)
      << "the differential run never exercised recovery at all";
}

TEST(HazardDifferential, StagedInstantRecoveryIsInTheStaticSet) {
  // The Figure 3 staging (see recovery_test): a poller blocks under the
  // full view, a view missing the poll chain activates, a forked child
  // wakes it. sys_poll's deliberately-odd return address forces an instant
  // recovery — which the static pass must have predicted.
  class Poller : public os::AppModel {
   public:
    AppAction next(u32 last, os::OsRuntime&, u32) override {
      switch (phase_++) {
        case 0: return AppAction::syscall(abi::kSysPipe);
        case 1:
          rfd_ = last & 0xFFFF;
          wfd_ = last >> 16;
          return AppAction::syscall(abi::kSysFork);
        case 2: return AppAction::syscall(abi::kSysPoll, rfd_, 1);
        case 3: return AppAction::syscall(abi::kSysRead, rfd_, 64);
        default: return AppAction::syscall(abi::kSysExit);
      }
    }
    std::shared_ptr<os::AppModel> fork_child() override {
      return std::make_shared<Writer>(wfd_);
    }
   private:
    class Writer : public os::AppModel {
     public:
      explicit Writer(u32 wfd) : wfd_(wfd) {}
      AppAction next(u32, os::OsRuntime&, u32) override {
        switch (phase_++) {
          case 0: return AppAction::syscall(abi::kSysNanosleep, 20);
          case 1: return AppAction::syscall(abi::kSysWrite, wfd_, 64);
          default: return AppAction::syscall(abi::kSysExit);
        }
      }
     private:
      u32 wfd_;
      int phase_ = 0;
    };
    int phase_ = 0;
    u32 rfd_ = 0, wfd_ = 0;
  };

  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  core::EngineOptions options;
  options.cross_view_scan = false;  // force the trap-time Figure 3 path
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel(), options);
  core::KernelViewConfig cfg = harness::profile_of("gzip");
  cfg.app_name = "poller";

  u32 pid = sys.os().spawn("poller", std::make_shared<Poller>());
  sys.run_for(3'000'000);  // parent blocks inside pipe_poll (full view)

  engine.enable();
  u32 view = engine.load_view(cfg);
  engine.bind("poller", view);
  engine.install_static_audit(
      harness::build_static_audit(graph, {{view, cfg}}));
  sys.run_until_exit(pid, 400'000'000);

  const core::RecoveryEngine::Stats& stats = engine.recovery_stats();
  ASSERT_GT(stats.instant_recoveries, 0u);
  EXPECT_GT(stats.instant_in_hazard_set, 0u);
  EXPECT_EQ(stats.instant_off_hazard_set, 0u);
}

}  // namespace
}  // namespace fc
