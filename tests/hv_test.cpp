// Hypervisor-layer tests: symbol tables, VMI (task structs, module list,
// symbolization, UNKNOWN), the event queue, and pristine code reads.
#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "hv/event_queue.hpp"
#include "hv/symbols.hpp"

namespace fc::hv {
namespace {

TEST(SymbolTable, LookupAndSymbolize) {
  SymbolTable table;
  table.add("alpha", 0x1000, 0x40);
  table.add("beta", 0x1040, 0x20);
  EXPECT_EQ(table.must_addr("alpha"), 0x1000u);
  EXPECT_EQ(*table.symbolize(0x1000), "alpha");
  EXPECT_EQ(*table.symbolize(0x1017), "alpha+0x17");
  EXPECT_EQ(*table.symbolize(0x1040), "beta");
  EXPECT_FALSE(table.symbolize(0x1060).has_value());  // past beta's end
  EXPECT_FALSE(table.symbolize(0x0FFF).has_value());
  EXPECT_EQ(table.find_covering(0x1041)->name, "beta");
}

TEST(SymbolTable, MissingSymbolIsFatal) {
  SymbolTable table;
  EXPECT_DEATH((void)table.must_addr("nope"), "unknown symbol");
}

TEST(EventQueue, FiresInDeadlineOrderWithFifoTieBreak) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(200, [&] { order.push_back(2); });
  queue.schedule_at(100, [&] { order.push_back(1); });
  queue.schedule_at(200, [&] { order.push_back(3); });  // same deadline: FIFO
  queue.schedule_at(300, [&] { order.push_back(4); });
  EXPECT_EQ(queue.next_deadline(), 100u);
  EXPECT_EQ(queue.run_due(250), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.run_due(299), 0u);
  EXPECT_EQ(queue.run_due(300), 1u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ActionsMayScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(10, [&] {
    ++fired;
    queue.schedule_at(20, [&] { ++fired; });
  });
  queue.run_due(30);  // the nested event is already due
  queue.run_due(30);
  EXPECT_EQ(fired, 2);
}

TEST(Vmi, ReadsTasksAndModules) {
  harness::GuestSystem sys;
  Vmi& vmi = sys.hv().vmi();
  TaskInfo idle = vmi.current_task();
  EXPECT_EQ(idle.pid, 0u);
  EXPECT_EQ(idle.comm, "swapper");

  auto mods = vmi.module_list();
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].name, "e1000");
  auto covering = vmi.module_covering(mods[0].base + 10);
  ASSERT_TRUE(covering.has_value());
  EXPECT_EQ(covering->name, "e1000");
  EXPECT_FALSE(vmi.module_covering(mods[0].base + mods[0].size).has_value());
}

TEST(Vmi, SymbolizesKernelModuleAndUnknown) {
  harness::GuestSystem sys;
  Vmi& vmi = sys.hv().vmi();
  const os::KernelImage& kernel = sys.os().kernel();
  GVirt schedule = kernel.symbols.must_addr("schedule");
  EXPECT_EQ(vmi.symbolize(schedule), "schedule");
  EXPECT_EQ(vmi.symbolize(schedule + 5), "schedule+0x5");

  auto mod = sys.os().loaded_module("e1000");
  std::string sym = vmi.symbolize(mod->base);
  EXPECT_EQ(sym.rfind("e1000", 0), 0u) << sym;

  // Kernel heap data (no module, no text): UNKNOWN.
  EXPECT_EQ(vmi.symbolize(0xC17FF000), "UNKNOWN");
  EXPECT_TRUE(vmi.is_base_kernel_text(schedule));
  EXPECT_FALSE(vmi.is_base_kernel_text(0xC17FF000));
  EXPECT_TRUE(vmi.is_plausible_code_address(mod->base + 4));
  EXPECT_FALSE(vmi.is_plausible_code_address(0xC17FF000));
}

TEST(Hypervisor, PristineReadsIgnoreActiveViews) {
  harness::GuestSystem sys;
  const os::KernelImage& kernel = sys.os().kernel();
  GVirt probe = kernel.symbols.must_addr("udp_recvmsg");

  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  u32 view = engine.load_view(harness::profile_of("top"));
  engine.force_activate(view);
  // The current mapping shows UD2; the pristine read still shows the
  // prologue.
  EXPECT_EQ(sys.hv().pristine_read8(probe), 0x55);
  engine.force_activate(core::kFullKernelViewId);
}

TEST(Hypervisor, ExitStatisticsAccumulate) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("top", engine.load_view(harness::profile_of("top")));
  sys.hv().reset_stats();
  apps::AppScenario top = apps::make_app("top", 5);
  u32 pid = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());
  sys.run_until_exit(pid, 600'000'000);
  EXPECT_GT(sys.hv().stats().breakpoint_exits, 0u);
}

TEST(Hypervisor, UnhandledInvalidOpcodeIsAGuestFault) {
  harness::GuestSystem sys;
  // Inject a UD2 into a user program with no FACE-CHANGE handler.
  class Crasher : public os::AppModel {
   public:
    os::AppAction next(u32, os::OsRuntime&, u32) override {
      return os::AppAction::compute_only(100);
    }
  };
  isa::Assembler a;
  a.ud2();
  os::ProgramImage program;
  program.code = a.finish(os::kUserCodeVa);
  u32 pid = sys.os().spawn("crasher", std::make_shared<Crasher>(), program);
  hv::RunOutcome outcome = sys.run_until_exit(pid, 50'000'000);
  EXPECT_EQ(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_EQ(sys.hv().last_fault_pc(), os::kUserCodeVa);
}

}  // namespace
}  // namespace fc::hv
