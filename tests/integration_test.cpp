// Cross-cutting integration tests for the paper's four design goals (§II-B):
// strictness, robustness, transparency, flexibility.
#include <gtest/gtest.h>

#include "core/similarity.hpp"
#include "harness/harness.hpp"

namespace fc {
namespace {

// --------------------------------------------------------------------------
// Robustness: same workload under its own view behaves exactly as under the
// full kernel view.
// --------------------------------------------------------------------------

struct RunCounters {
  u64 syscalls, fs_read, fs_written, tty_written, net_sent, net_received;
};

RunCounters run_app(const std::string& app, bool enforce) {
  harness::GuestSystem sys;
  std::unique_ptr<core::FaceChangeEngine> engine;
  if (enforce) {
    engine = std::make_unique<core::FaceChangeEngine>(sys.hv(),
                                                      sys.os().kernel());
    engine->enable();
    engine->bind(app, engine->load_view(harness::profile_of(app)));
  }
  apps::AppScenario scenario = apps::make_app(app, 10);
  u32 pid = sys.os().spawn(app, scenario.model);
  scenario.install_environment(sys.os());
  EXPECT_NE(sys.run_until_exit(pid, 900'000'000), hv::RunOutcome::kGuestFault)
      << app;
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid)) << app;
  const auto& c = sys.os().counters();
  return {c.syscalls,       c.fs_bytes_read, c.fs_bytes_written,
          c.tty_bytes_written, c.net_bytes_sent, c.net_bytes_received};
}

class RobustnessGoal : public ::testing::TestWithParam<std::string> {};

TEST_P(RobustnessGoal, ViewEnforcementDoesNotChangeBehaviour) {
  RunCounters full = run_app(GetParam(), /*enforce=*/false);
  RunCounters view = run_app(GetParam(), /*enforce=*/true);
  EXPECT_EQ(full.syscalls, view.syscalls);
  EXPECT_EQ(full.fs_read, view.fs_read);
  EXPECT_EQ(full.fs_written, view.fs_written);
  EXPECT_EQ(full.tty_written, view.tty_written);
  EXPECT_EQ(full.net_sent, view.net_sent);
  EXPECT_EQ(full.net_received, view.net_received);
}

INSTANTIATE_TEST_SUITE_P(AllApps, RobustnessGoal,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& param_info) {
                           return param_info.param;
                         });

// --------------------------------------------------------------------------
// Strictness: under a custom view, unprofiled kernel code is unreachable
// without a logged recovery.
// --------------------------------------------------------------------------

TEST(StrictnessGoal, EveryOutOfViewAccessIsLogged) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  core::KernelViewConfig cfg = harness::profile_of("top");
  cfg.app_name = "intruder";
  u32 view = engine.load_view(cfg);
  engine.bind("intruder", view);

  // Run a gzip-like workload (heavy ext4 writes) under top's view: every
  // excursion beyond the view must appear in the log, and the loaded set
  // only ever grows to cover exactly the recovered functions.
  apps::AppScenario gzip = apps::make_app("gzip", 5);
  u32 pid = sys.os().spawn("intruder", gzip.model);
  sys.run_until_exit(pid, 600'000'000);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));

  const core::RecoveryLog& log = engine.recovery_log();
  EXPECT_GT(log.size(), 0u);
  EXPECT_TRUE(log.recovered_function("ext4_file_write") ||
              log.recovered_function("do_sync_write"));
  for (const core::RecoveryEvent& ev : log.events())
    EXPECT_EQ(ev.process_comm, "intruder");
}

// --------------------------------------------------------------------------
// Transparency: the guest needs no modification; enforcement is invisible
// to a well-behaved application.
// --------------------------------------------------------------------------

TEST(TransparencyGoal, GuestKernelBytesAreNeverModified) {
  harness::GuestSystem sys;
  const os::KernelImage& kernel = sys.os().kernel();
  // Snapshot pristine text.
  std::vector<u8> before(kernel.text.size());
  sys.hv().pristine_read(kernel.text_base, before);

  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("top", engine.load_view(harness::profile_of("top")));
  apps::AppScenario top = apps::make_app("top", 6);
  u32 pid = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());
  sys.run_until_exit(pid, 600'000'000);
  engine.disable();

  // The original kernel code pages are untouched — all redirection happened
  // in the EPT.
  std::vector<u8> after(kernel.text.size());
  sys.hv().pristine_read(kernel.text_base, after);
  EXPECT_EQ(before, after);
}

// --------------------------------------------------------------------------
// Flexibility: hot plug/unplug mid-run.
// --------------------------------------------------------------------------

TEST(FlexibilityGoal, HotPlugAndUnplugMidRun) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();

  apps::AppScenario top = apps::make_app("top", 120);
  u32 pid = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());
  sys.run_for(8'000'000);  // runs under the full view

  // Hot-plug the view while the app runs.
  u32 view = engine.load_view(harness::profile_of("top"));
  engine.bind("top", view);
  sys.run_for(20'000'000);
  EXPECT_TRUE(sys.os().task_alive(pid));
  EXPECT_GT(engine.stats().view_switches(), 0u);

  // Hot-unplug: back to the full view without disturbing the app.
  engine.unload_view(view);
  hv::RunOutcome outcome = sys.run_until_exit(pid, 900'000'000);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
}

// --------------------------------------------------------------------------
// Table I shape (the quantitative study of §II-A).
// --------------------------------------------------------------------------

TEST(SimilarityStudy, MatrixShapeMatchesThePaper) {
  const auto& configs = harness::profile_all_apps();
  ASSERT_EQ(configs.size(), 12u);
  core::SimilarityMatrix m = core::compute_similarity(configs);

  auto index_of = [&](const std::string& app) {
    for (std::size_t i = 0; i < m.apps.size(); ++i)
      if (m.apps[i] == app) return i;
    ADD_FAILURE() << app;
    return std::size_t{0};
  };
  // Orthogonal pair (top vs firefox): low — the paper's headline 33.6%.
  double top_firefox = m.similarity[index_of("top")][index_of("firefox")];
  EXPECT_LT(top_firefox, 0.5);
  // Similar servers (apache vs vsftpd): high — the paper's 83.5%.
  double apache_vsftpd = m.similarity[index_of("apache")][index_of("vsftpd")];
  EXPECT_GT(apache_vsftpd, 0.75);
  // Interactive media pair (totem vs eog): high — the paper's 86.5%.
  double totem_eog = m.similarity[index_of("totem")][index_of("eog")];
  EXPECT_GT(totem_eog, 0.7);
  // Global bounds.
  EXPECT_GT(m.min_similarity(), 0.1);
  EXPECT_LT(m.min_similarity(), 0.55);
  EXPECT_GT(m.max_similarity(), 0.75);
  EXPECT_LT(m.max_similarity(), 1.0);
  // Render sanity.
  std::string table = m.render();
  for (const std::string& app : apps::all_app_names())
    EXPECT_NE(table.find(app.substr(0, 8)), std::string::npos) << app;
}

TEST(SimilarityStudy, UnionViewIsLargerThanAnySingleView) {
  const auto& configs = harness::profile_all_apps();
  core::KernelViewConfig union_view = core::make_union_view(configs);
  for (const auto& cfg : configs)
    EXPECT_GT(union_view.size_bytes(), cfg.size_bytes()) << cfg.app_name;
}

// --------------------------------------------------------------------------
// Config file round trip through the engine (profiling → file → runtime,
// the paper's two-phase workflow).
// --------------------------------------------------------------------------

TEST(TwoPhaseWorkflow, ConfigSurvivesSerializationIntoANewSession) {
  std::string file_contents = harness::profile_of("top").serialize();

  harness::GuestSystem sys;  // a different "boot" of the same machine
  core::KernelViewConfig cfg = core::KernelViewConfig::parse(file_contents);
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("top", engine.load_view(cfg));
  apps::AppScenario top = apps::make_app("top", 8);
  u32 pid = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());
  EXPECT_NE(sys.run_until_exit(pid, 900'000'000),
            hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
}

}  // namespace
}  // namespace fc
