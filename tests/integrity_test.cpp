// §V-B extension tests: kernel data integrity monitoring — syscall-table
// hook detection (at install time, before any victim executes the hook) and
// DKOM self-hiding exposure via cross-view module-list comparison.
#include <gtest/gtest.h>

#include "core/integrity.hpp"
#include "harness/harness.hpp"

namespace fc {
namespace {

namespace abi = fc::abi;

TEST(Integrity, CleanSystemHasNoViolations) {
  harness::GuestSystem sys;
  core::KernelIntegrityMonitor monitor(sys.hv(), sys.os().kernel());
  monitor.take_baseline();
  sys.run_for(20'000'000);
  apps::AppScenario gzip = apps::make_app("gzip", 5);
  u32 pid = sys.os().spawn("gzip", gzip.model);
  sys.run_until_exit(pid, 600'000'000);
  EXPECT_TRUE(monitor.check().empty());
}

TEST(Integrity, DetectsSyscallTableHookAtInstallTime) {
  harness::GuestSystem sys;
  core::KernelIntegrityMonitor monitor(sys.hv(), sys.os().kernel());
  monitor.take_baseline();

  // Sebek hooks sys_read and stays visible in the module list: the monitor
  // must report the rewritten slot and symbolize the hook by module name —
  // before any protected process ever executes it.
  auto sebek = attacks::make_attack("Sebek");
  sebek->deploy(sys.os(), 0);
  sys.run_for(30'000'000);

  auto violations = monitor.check();
  ASSERT_EQ(violations.size(), 1u);
  const auto& v = violations[0];
  EXPECT_EQ(v.table, core::KernelIntegrityMonitor::Violation::Table::kSyscallTable);
  EXPECT_EQ(v.slot, static_cast<u32>(abi::kSysRead));
  EXPECT_EQ(v.target.rfind("sebek_sys_read", 0), 0u) << v.target;
  EXPECT_NE(v.render().find("syscall_table[3]"), std::string::npos);
}

TEST(Integrity, HiddenModuleHookSymbolizesAsUnknown) {
  harness::GuestSystem sys;
  core::KernelIntegrityMonitor monitor(sys.hv(), sys.os().kernel());
  monitor.take_baseline();

  auto kbeast = attacks::make_attack("KBeast");  // hides itself
  kbeast->deploy(sys.os(), 0);
  sys.run_for(30'000'000);

  auto violations = monitor.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].slot, static_cast<u32>(abi::kSysRead));
  // The hook points into a region the guest claims doesn't exist.
  EXPECT_EQ(violations[0].target, "UNKNOWN");
}

TEST(Integrity, CrossViewComparisonExposesDkomSelfHiding) {
  harness::GuestSystem sys;
  core::KernelIntegrityMonitor monitor(sys.hv(), sys.os().kernel());
  monitor.take_baseline();
  // Out-of-band truth: what the host actually loaded. (A real deployment
  // scans memory; the comparison logic is identical.)
  monitor.set_module_truth_source([&sys] {
    std::vector<hv::ModuleInfo> truth;
    for (const char* name : {"e1000", "ipsecs_kbeast_v1"}) {
      if (auto mod = sys.os().loaded_module(name)) truth.push_back(*mod);
    }
    return truth;
  });

  EXPECT_TRUE(monitor.find_hidden_modules().empty());

  auto kbeast = attacks::make_attack("KBeast");
  kbeast->deploy(sys.os(), 0);
  sys.run_for(30'000'000);

  auto hidden = monitor.find_hidden_modules();
  ASSERT_EQ(hidden.size(), 1u);
  EXPECT_EQ(hidden[0].name, "ipsecs_kbeast_v1");
}

TEST(Integrity, LegitimateModuleLoadIsNotFlagged) {
  harness::GuestSystem sys;
  core::KernelIntegrityMonitor monitor(sys.hv(), sys.os().kernel());
  monitor.take_baseline();

  // A benign module that hooks nothing.
  os::Blueprint bp;
  bp.add("benign_fn", "test", [](os::EmitCtx& c) { c.pad(24); });
  u32 id = sys.os().register_module({"benign", std::move(bp), "", true,
                                     nullptr});
  sys.os().load_module_now(id);
  sys.run_for(10'000'000);
  EXPECT_TRUE(monitor.check().empty());
}

TEST(Integrity, ComplementsViewEnforcement) {
  // Full stack: views + behaviour + integrity. Adore-ng's dormant hook is
  // caught by the integrity scan even before `top` runs getdents.
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  core::KernelIntegrityMonitor monitor(sys.hv(), sys.os().kernel());
  monitor.take_baseline();

  auto adore = attacks::make_attack("Adore-ng");
  adore->deploy(sys.os(), 0);
  sys.run_for(30'000'000);

  // Integrity: immediate, execution-free detection.
  auto violations = monitor.check();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].slot, static_cast<u32>(abi::kSysGetdents));

  // Views: detection when the victim actually trips the hook.
  engine.enable();
  engine.bind("top", engine.load_view(harness::profile_of("top")));
  apps::AppScenario top = apps::make_app("top", 8);
  u32 pid = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());
  sys.run_until_exit(pid, 600'000'000);
  EXPECT_TRUE(engine.recovery_log().recovered_function("adore_"));
}

}  // namespace
}  // namespace fc
