// The virtio-style IO data plane: ring mechanics (wrap-around, back-pressure,
// out-of-order completion, reset), COW fleet isolation of ring pages, and the
// headline parity contract — the default tuning is cycle-exact with the
// legacy per-event IRQ path, proven in instruction lockstep.
#include <gtest/gtest.h>

#include <cstring>

#include "harness/harness.hpp"
#include "io/io_plane.hpp"
#include "io/virtio_ring.hpp"
#include "mem/shared_frames.hpp"

namespace fc {
namespace {

os::OsConfig ring_config(u32 ring_size) {
  os::OsConfig cfg;
  cfg.io.ring_size = ring_size;
  return cfg;
}

// ---------------------------------------------------------------------------
// Ring mechanics (host-driven: the device side injects, the test plays the
// guest's drain leaf directly).
// ---------------------------------------------------------------------------

TEST(IoPlane, RingWrapAroundPreservesFifoOrder) {
  // 4x the ring size plus a remainder, drained after every injection: the
  // free-running indices wrap several times and every packet comes back in
  // arrival order.
  harness::GuestSystem sys(ring_config(8));
  io::IoPlane* io = sys.os().io_plane();
  std::vector<u32> got;
  const u32 total = 4 * 8 + 3;
  for (u32 i = 0; i < total; ++i) {
    io->nic_rx({0, 9000, i + 1});
    io->drain_nic(
        [&got](const io::IoPlane::Packet& p) { got.push_back(p.len); });
  }
  ASSERT_EQ(got.size(), total);
  for (u32 i = 0; i < total; ++i) EXPECT_EQ(got[i], i + 1);
  EXPECT_EQ(io->stats().nic_delivered, total);
  EXPECT_EQ(io->stats().backpressure, 0u);
  EXPECT_EQ(io->in_flight(), 0u);
  // All buffers re-posted: the ring is back to its boot occupancy.
  EXPECT_EQ(io->queue(io::IoPlane::kNic).device_avail(), 8u);
}

TEST(IoPlane, FullRingBackpressuresIntoBacklogAndDrainsInOrder) {
  harness::GuestSystem sys(ring_config(4));
  io::IoPlane* io = sys.os().io_plane();
  // Burst of 10 into a 4-deep ring with no guest drain: 4 land in the ring,
  // 6 park in the device backlog without raising further IRQs.
  for (u32 i = 0; i < 10; ++i) io->nic_rx({0, 9000, i + 1});
  EXPECT_EQ(io->in_flight(), 4u);
  EXPECT_EQ(io->backlog_depth(), 6u);
  EXPECT_EQ(io->stats().backpressure, 6u);
  EXPECT_EQ(io->stats().backlog_peak, 6u);

  // One drain absorbs the whole burst — buffers freed by the drain are
  // refilled from the backlog mid-loop — and order is preserved end-to-end.
  std::vector<u32> got;
  u32 applied = io->drain_nic(
      [&got](const io::IoPlane::Packet& p) { got.push_back(p.len); });
  EXPECT_EQ(applied, 10u);
  ASSERT_EQ(got.size(), 10u);
  for (u32 i = 0; i < 10; ++i) EXPECT_EQ(got[i], i + 1);
  EXPECT_EQ(io->backlog_depth(), 0u);
  EXPECT_EQ(io->stats().backlog_refills, 6u);
  EXPECT_EQ(io->in_flight(), 0u);
}

TEST(Virtqueue, OutOfOrderUsedPublicationIsLegal) {
  // A standalone queue on scratch guest memory (the unused third pool slot
  // of the IO arena): claim two buffers, publish them in reverse, and the
  // driver observes exactly the publication order.
  harness::GuestSystem sys;
  mem::Machine& m = sys.hv().machine();
  io::VirtqueueLayout lay;
  const GPhys scratch = io::kIoBufferPoolBase + 2 * io::kIoBufferPoolStride;
  lay.desc = scratch;
  lay.avail = scratch + 0x400;
  lay.used = scratch + 0x600;
  lay.buffers = scratch + 0x1000;
  lay.size = 4;
  lay.buf_bytes = 64;
  io::Virtqueue q(&m, lay);
  q.init();
  ASSERT_EQ(q.device_avail(), 4u);

  u32 first = q.device_pop_avail();
  u32 second = q.device_pop_avail();
  EXPECT_EQ(q.device_outstanding(), 2u);
  q.device_push_used(second, 7);
  q.device_push_used(first, 9);

  auto e1 = q.driver_pop_used();
  auto e2 = q.driver_pop_used();
  ASSERT_TRUE(e1.has_value());
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e1->id, second);
  EXPECT_EQ(e1->len, 7u);
  EXPECT_EQ(e2->id, first);
  EXPECT_EQ(e2->len, 9u);
  EXPECT_FALSE(q.driver_pop_used().has_value());
  EXPECT_EQ(q.device_outstanding(), 0u);
}

TEST(IoPlane, ResetMidFlightDropsStateAndTrafficResumes) {
  harness::GuestSystem sys(ring_config(4));
  io::IoPlane* io = sys.os().io_plane();
  // In-flight on both queues plus a NIC backlog, then yank the device.
  for (u32 i = 0; i < 7; ++i) io->nic_rx({0, 9000, i + 1});
  io->blk_complete(1);
  io->blk_complete(2);
  ASSERT_GT(io->in_flight(), 0u);
  ASSERT_GT(io->backlog_depth(), 0u);

  io->reset();
  EXPECT_EQ(io->in_flight(), 0u);
  EXPECT_EQ(io->backlog_depth(), 0u);
  EXPECT_EQ(io->stats().resets, 1u);
  EXPECT_EQ(io->queue(io::IoPlane::kNic).device_avail(), 4u);
  EXPECT_EQ(io->queue(io::IoPlane::kBlk).device_avail(), 4u);

  // Post-reset traffic flows normally and nothing pre-reset resurfaces.
  std::vector<u32> got;
  io->nic_rx({0, 9000, 101});
  io->nic_rx({0, 9000, 102});
  io->drain_nic(
      [&got](const io::IoPlane::Packet& p) { got.push_back(p.len); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 101u);
  EXPECT_EQ(got[1], 102u);
  std::vector<u32> pids;
  io->blk_complete(9);
  io->drain_blk([&pids](u32 pid) { pids.push_back(pid); });
  ASSERT_EQ(pids.size(), 1u);
  EXPECT_EQ(pids[0], 9u);
}

// ---------------------------------------------------------------------------
// COW fleet isolation: ring traffic in one clone promotes only that clone's
// ring pages; the image and sibling clones never see it.
// ---------------------------------------------------------------------------

TEST(IoPlane, RingTrafficPromotesOnlyTheActiveClonesPages) {
  harness::SharedImageOptions options;
  options.apps = {"gzip", "bash"};
  options.profile_iterations = 4;
  auto image = harness::build_shared_image(options);

  harness::GuestSystem a(os::OsConfig{}, *image);
  harness::GuestSystem b(os::OsConfig{}, *image);

  const GPhys nic_ctrl = io::kIoArenaPhys;        // queue 0 desc/avail/used
  const GPhys nic_pool = io::kIoBufferPoolBase;   // queue 0 buffer pool
  const mem::HostMemory& ah = a.hv().machine().host();
  const mem::HostMemory& bh = b.hv().machine().host();
  // Clones start with the boot-initialized ring control pages still
  // COW-shared (the clone's own init_rings writes are same-value no-ops
  // against the image), and the never-written buffer pools zero-backed.
  ASSERT_TRUE(ah.is_shared(a.hv().machine().frame_for(nic_ctrl)));
  ASSERT_TRUE(bh.is_shared(b.hv().machine().frame_for(nic_ctrl)));
  ASSERT_TRUE(bh.is_zero_backed(b.hv().machine().frame_for(nic_pool)));
  const u64 promotions_before = ah.cow_promotions();

  // NIC traffic in A only (no listener — the drop still flows through the
  // ring DMA path). B just runs.
  a.os().schedule_datagram_stream(a.vcpu().cycles() + 1'000, 50'000, 50,
                                  9000, 64);
  a.run_for(4'000'000);
  b.run_for(4'000'000);
  EXPECT_GT(a.os().io_plane()->stats().nic_delivered, 0u);

  // A promoted its ring control page and buffer pool page...
  EXPECT_GT(ah.cow_promotions(), promotions_before);
  EXPECT_TRUE(ah.is_private(a.hv().machine().frame_for(nic_ctrl)));
  EXPECT_TRUE(ah.is_private(a.hv().machine().frame_for(nic_pool)));

  // ...while B's ctrl page stays shared and byte-identical to the image
  // store, and B's pool page never left the zero frame.
  HostFrame bf = b.hv().machine().frame_for(nic_ctrl);
  ASSERT_TRUE(bh.is_shared(bf)) << "B's ring ctrl page lost sharing";
  EXPECT_EQ(std::memcmp(bh.frame(bf).data(),
                        image->store.page_data(bh.shared_backing(bf)),
                        kPageSize),
            0)
      << "B's ring ctrl page diverged from the store";
  EXPECT_TRUE(bh.is_zero_backed(b.hv().machine().frame_for(nic_pool)))
      << "B's ring buffer pool was written without traffic";
}

// ---------------------------------------------------------------------------
// Parity: the default tuning is cycle-exact with the legacy path.
// ---------------------------------------------------------------------------

struct ParityGuest {
  explicit ParityGuest(bool ring_path) {
    os::OsConfig cfg;
    cfg.io.enabled = ring_path;
    sys = std::make_unique<harness::GuestSystem>(cfg);
  }

  void start(const std::string& app, u32 iterations) {
    apps::AppScenario scenario = apps::make_app(app, iterations);
    pid = sys->os().spawn(app, scenario.model);
    scenario.install_environment(sys->os());
  }

  std::unique_ptr<harness::GuestSystem> sys;
  u32 pid = 0;
};

TEST(IoParity, DefaultTuningIsCycleExactWithLegacyPathInLockstep) {
  // The apache scenario drives the full stack — SYN/data packets through the
  // NIC queue, file IO through the block queue — while both guests step one
  // instruction at a time. Any divergence in IRQ timing, handler work, or
  // cycle charging between the ring transport (default tuning) and the
  // legacy deque path fails at the exact step it appears.
  ParityGuest ring(true);
  ParityGuest legacy(false);
  ring.start("apache", 2);
  legacy.start("apache", 2);
  ASSERT_EQ(ring.pid, legacy.pid);

  u64 steps = 0;
  std::optional<hv::RunOutcome> or_, ol;
  while (ring.sys->vcpu().cycles() < 300'000'000ull) {
    cpu::Exit er, el;
    or_ = ring.sys->hv().step_one(&er);
    ol = legacy.sys->hv().step_one(&el);
    ++steps;
    const cpu::Regs& rr = ring.sys->vcpu().regs();
    const cpu::Regs& rl = legacy.sys->vcpu().regs();
    bool same = er.reason == el.reason && er.pc == el.pc && or_ == ol &&
                rr.gpr == rl.gpr && rr.pc == rl.pc && rr.mode == rl.mode &&
                ring.sys->vcpu().cycles() == legacy.sys->vcpu().cycles();
    ASSERT_TRUE(same) << "io parity divergence at step " << steps
                      << ": ring pc=0x" << std::hex << rr.pc
                      << " cycles=" << std::dec << ring.sys->vcpu().cycles()
                      << " | legacy pc=0x" << std::hex << rl.pc
                      << " cycles=" << std::dec
                      << legacy.sys->vcpu().cycles();
    if (or_.has_value()) break;  // both ended identically (checked above)
    if ((steps & 0x3FF) == 0 &&
        ring.sys->os().task_zombie_or_dead(ring.pid))
      break;
  }
  EXPECT_TRUE(ring.sys->os().task_zombie_or_dead(ring.pid));
  EXPECT_TRUE(legacy.sys->os().task_zombie_or_dead(legacy.pid));

  // The ring transport actually carried the traffic on one side and the
  // legacy deque on the other — this wasn't two identical idle guests.
  const io::IoPlane::Stats& rs = ring.sys->os().io_plane()->stats();
  EXPECT_GT(rs.nic_delivered, 0u);
  EXPECT_GT(rs.drains, 0u);
  EXPECT_EQ(legacy.sys->os().io_plane()->stats().nic_delivered, 0u);
}

}  // namespace
}  // namespace fc
