// ISA unit tests: byte-exact encodings the paper's mechanisms depend on,
// decoder totality, assembler fixups, and encode/decode round-trip
// properties over randomized instruction streams.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/isa.hpp"
#include "support/rng.hpp"

namespace fc::isa {
namespace {

DecodeResult decode_bytes(std::initializer_list<u8> bytes) {
  std::vector<u8> v(bytes);
  return decode(v);
}

TEST(Isa, Ud2IsTheTwoByteInvalidOpcode) {
  DecodeResult r = decode_bytes({0x0F, 0x0B});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, Op::kUd2);
  EXPECT_EQ(r.insn.length, 2);
}

TEST(Isa, ShiftedUd2PairDecodesAsValidOr) {
  // The paper's Figure 3 hazard: at an odd offset into UD2 filler the
  // stream reads 0B 0F, which is a *valid* OR instruction on real x86 and
  // here — it must NOT trap.
  DecodeResult r = decode_bytes({0x0B, 0x0F});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, Op::kOr);
}

TEST(Isa, PrologueSignatureBytes) {
  // push %ebp = 55; mov %ebp,%esp = 89 E5 — the boundary-search signature.
  Assembler a;
  a.prologue();
  std::vector<u8> bytes = a.finish(0);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x55);
  EXPECT_EQ(bytes[1], 0x89);
  EXPECT_EQ(bytes[2], 0xE5);

  DecodeResult push = decode(bytes);
  ASSERT_TRUE(push.ok());
  EXPECT_EQ(push.insn.op, Op::kPush);
  EXPECT_EQ(push.insn.r1, Reg::FP);
  DecodeResult mov = decode(std::span<const u8>(bytes).subspan(1));
  ASSERT_TRUE(mov.ok());
  EXPECT_EQ(mov.insn.op, Op::kMovRR);
  EXPECT_EQ(mov.insn.r1, Reg::FP);
  EXPECT_EQ(mov.insn.r2, Reg::SP);
}

TEST(Isa, SyscallDispatchEncodingMatchesFigure3) {
  // call *table(,%eax,4) must be FF 14 85 imm32, as shown in the paper.
  Assembler a;
  a.calltab(0xC0598150);
  std::vector<u8> bytes = a.finish(0);
  ASSERT_EQ(bytes.size(), 7u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0x14);
  EXPECT_EQ(bytes[2], 0x85);
  DecodeResult r = decode(bytes);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, Op::kCallTab);
  EXPECT_EQ(r.insn.imm, 0xC0598150u);
}

TEST(Isa, CallRelTarget) {
  Assembler a;
  auto label = a.make_label();
  a.nop();
  a.call(label);
  a.nop();
  a.bind(label);
  a.ret();
  std::vector<u8> bytes = a.finish(0x1000);
  // call at 0x1001, length 5, next 0x1006, nop, label at 0x1007.
  DecodeResult r = decode(std::span<const u8>(bytes).subspan(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, Op::kCall);
  EXPECT_EQ(r.insn.rel_target(0x1001), 0x1007u);
}

TEST(Isa, BackwardShortJump) {
  Assembler a;
  auto loop = a.make_label();
  a.bind(loop);
  a.nop();
  a.jz(loop);
  std::vector<u8> bytes = a.finish(0x2000);
  DecodeResult r = decode(std::span<const u8>(bytes).subspan(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, Op::kJz);
  EXPECT_EQ(r.insn.rel_target(0x2001), 0x2000u);
}

TEST(Isa, SymbolFixupsRelativeAndAbsolute) {
  Assembler a;
  a.call_sym("target");
  a.mov_imm_sym(Reg::A, "target");
  auto resolver = [](const std::string& name) -> GVirt {
    EXPECT_EQ(name, "target");
    return 0x5000;
  };
  std::vector<u8> bytes = a.finish(0x1000, resolver);
  DecodeResult call = decode(bytes);
  ASSERT_TRUE(call.ok());
  EXPECT_EQ(call.insn.rel_target(0x1000), 0x5000u);
  DecodeResult mov = decode(std::span<const u8>(bytes).subspan(5));
  ASSERT_TRUE(mov.ok());
  EXPECT_EQ(mov.insn.op, Op::kMovImm);
  EXPECT_EQ(mov.insn.imm, 0x5000u);
}

TEST(Isa, TruncatedWindowsReportTruncation) {
  EXPECT_EQ(decode_bytes({0xE8}).status, DecodeStatus::kTruncated);
  EXPECT_EQ(decode_bytes({0xB8, 0x01}).status, DecodeStatus::kTruncated);
  EXPECT_EQ(decode_bytes({0x0F}).status, DecodeStatus::kTruncated);
  EXPECT_EQ(decode_bytes({0xFF, 0x14}).status, DecodeStatus::kTruncated);
}

TEST(Isa, UnknownOpcodesAreInvalid) {
  EXPECT_EQ(decode_bytes({0xDE, 0xAD}).status, DecodeStatus::kInvalidOpcode);
  EXPECT_EQ(decode_bytes({0x0F, 0xFF}).status, DecodeStatus::kInvalidOpcode);
  // SIB memory forms are outside the subset.
  EXPECT_EQ(decode_bytes({0x8B, 0x44, 0x24}).status,
            DecodeStatus::kInvalidOpcode);
}

TEST(Isa, ControlFlowClassification) {
  EXPECT_TRUE(is_control_flow(Op::kCall));
  EXPECT_TRUE(is_control_flow(Op::kRet));
  EXPECT_TRUE(is_control_flow(Op::kInt));
  EXPECT_TRUE(is_control_flow(Op::kIret));
  EXPECT_TRUE(is_control_flow(Op::kHlt));
  EXPECT_FALSE(is_control_flow(Op::kNop));
  EXPECT_FALSE(is_control_flow(Op::kMovRR));
  EXPECT_FALSE(is_control_flow(Op::kKsvc));
}

TEST(Isa, DisasmRendersKeyForms) {
  Assembler a;
  a.calltab(0xC0598150);
  std::vector<u8> bytes = a.finish(0);
  DecodeResult r = decode(bytes);
  EXPECT_EQ(disasm(r.insn, 0), "call   *0xc0598150(,%eax,4)");

  DecodeResult ud2 = decode_bytes({0x0F, 0x0B});
  EXPECT_EQ(disasm(ud2.insn, 0), "ud2");
}

TEST(Isa, Rel8RangeIsChecked) {
  Assembler a;
  auto label = a.make_label();
  a.jz(label);
  for (int i = 0; i < 200; ++i) a.nop();
  a.bind(label);
  EXPECT_DEATH((void)a.finish(0), "rel8 branch out of range");
}

// --------------------------------------------------------------------------
// Property: a random instruction stream encodes, then decodes back to the
// same opcode sequence with the same lengths.
// --------------------------------------------------------------------------

class IsaRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(IsaRoundTrip, EncodeDecodeRoundTrip) {
  Rng rng(GetParam());
  Assembler a;
  std::vector<Op> emitted;
  for (int i = 0; i < 300; ++i) {
    Reg r1 = static_cast<Reg>(rng.below(kNumRegs));
    Reg r2 = static_cast<Reg>(rng.below(kNumRegs));
    switch (rng.below(14)) {
      case 0: a.nop(); emitted.push_back(Op::kNop); break;
      case 1: a.push(r1); emitted.push_back(Op::kPush); break;
      case 2: a.pop(r1); emitted.push_back(Op::kPop); break;
      case 3: a.mov(r1, r2); emitted.push_back(Op::kMovRR); break;
      case 4:
        a.mov_imm(r1, rng.next_u32());
        emitted.push_back(Op::kMovImm);
        break;
      case 5: a.add(r1, r2); emitted.push_back(Op::kAdd); break;
      case 6: a.xor_(r1, r2); emitted.push_back(Op::kXor); break;
      case 7: a.or_(r1, r2); emitted.push_back(Op::kOr); break;
      case 8: a.cmp_imm_a(rng.next_u32()); emitted.push_back(Op::kCmpImmA); break;
      case 9: a.ret(); emitted.push_back(Op::kRet); break;
      case 10: a.leave(); emitted.push_back(Op::kLeave); break;
      case 11:
        a.ksvc(static_cast<u16>(rng.below(200)));
        emitted.push_back(Op::kKsvc);
        break;
      case 12: {
        Reg base = r1 == Reg::SP ? Reg::FP : r1;
        a.load(r2, base, static_cast<i8>(rng.below(100)));
        emitted.push_back(Op::kLoad);
        break;
      }
      case 13: a.pusha(); emitted.push_back(Op::kPusha); break;
    }
  }
  std::vector<u8> bytes = a.finish(0x1000);
  std::size_t at = 0;
  for (Op expected : emitted) {
    DecodeResult r = decode(std::span<const u8>(bytes).subspan(at));
    ASSERT_TRUE(r.ok()) << "at offset " << at;
    EXPECT_EQ(r.insn.op, expected) << "at offset " << at;
    at += r.insn.length;
  }
  EXPECT_EQ(at, bytes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace fc::isa
