// Kernel builder tests: layout invariants the paper's mechanisms rely on
// (16-byte function alignment, prologue signatures, staged return-address
// parity for Figure 3), symbol tables, and module relocation.
#include <gtest/gtest.h>

#include "hv/guest_abi.hpp"
#include "os/blueprint.hpp"
#include "os/kbuilder.hpp"

namespace fc::os {
namespace {

const KernelImage& built_kernel() {
  static KernelImage image = KernelBuilder::build(
      make_base_kernel_blueprint(),
      mem::GuestLayout::kernel_va(mem::GuestLayout::kKernelCodePhys));
  return image;
}

TEST(KernelBuilder, AllFunctionsArePlacedAndAligned) {
  const KernelImage& image = built_kernel();
  EXPECT_GT(image.functions.size(), 300u);
  for (const FuncMeta& fn : image.functions) {
    EXPECT_EQ(fn.address % KernelBuilder::kFuncAlign, 0u) << fn.name;
    EXPECT_GT(fn.size, 0u) << fn.name;
    EXPECT_GE(fn.address, image.text_base);
    EXPECT_LE(fn.address + fn.size, image.text_end());
  }
}

TEST(KernelBuilder, FramedFunctionsStartWithThePrologueSignature) {
  const KernelImage& image = built_kernel();
  int framed = 0;
  for (const FuncMeta& fn : image.functions) {
    if (!fn.has_frame) continue;
    ++framed;
    u32 off = fn.address - image.text_base;
    EXPECT_EQ(image.text[off], 0x55) << fn.name;
    EXPECT_EQ(image.text[off + 1], 0x89) << fn.name;
    EXPECT_EQ(image.text[off + 2], 0xE5) << fn.name;
  }
  EXPECT_GT(framed, 250);
}

TEST(KernelBuilder, SymbolsRoundTrip) {
  const KernelImage& image = built_kernel();
  GVirt schedule = image.symbols.must_addr("schedule");
  auto sym = image.symbols.symbolize(schedule + 7);
  ASSERT_TRUE(sym.has_value());
  EXPECT_EQ(*sym, "schedule+0x7");
  EXPECT_EQ(image.symbols.find_covering(schedule + 3)->name, "schedule");
}

TEST(KernelBuilder, PaperChainsAreLinked) {
  // Spot-check the call chains the paper's figures depend on: every callee
  // must exist as a symbol.
  const KernelImage& image = built_kernel();
  for (const char* name :
       {"sys_bind", "security_socket_bind", "apparmor_socket_bind",
        "inet_bind", "inet_addr_type", "lock_sock_nested", "udp_v4_get_port",
        "udp_lib_get_port", "udp_lib_lport_inuse", "release_sock",
        "sys_recvfrom", "sock_recvmsg", "security_socket_recvmsg",
        "apparmor_socket_recvmsg", "sock_common_recvmsg", "udp_recvmsg",
        "__skb_recv_datagram", "prepare_to_wait_exclusive", "strnlen",
        "vsnprintf", "snprintf", "filp_open", "do_sync_write",
        "__jbd2_log_start_commit", "kvm_clock_get_cycles", "kvm_clock_read",
        "pvclock_clocksource_read", "native_read_tsc", "sys_poll",
        "do_sys_poll", "do_poll", "pipe_poll", "resume_userspace",
        "__switch_to", "syscall_call"}) {
    EXPECT_TRUE(image.symbols.addr(name).has_value()) << name;
  }
}

TEST(KernelBuilder, Figure3ParityIsStaged) {
  // sys_poll's call to do_sys_poll must leave an ODD return address (the
  // instant-recovery case); do_sys_poll's call to do_poll an EVEN one.
  const KernelImage& image = built_kernel();
  auto return_parity_of_call = [&](const char* caller, const char* callee) {
    const hv::Symbol* fn = image.symbols.find_covering(
        image.symbols.must_addr(caller));
    GVirt callee_addr = image.symbols.must_addr(callee);
    for (GVirt at = fn->address; at < fn->address + fn->size; ++at) {
      u32 off = at - image.text_base;
      if (image.text[off] != 0xE8) continue;
      u32 rel = image.text[off + 1] | (image.text[off + 2] << 8) |
                (image.text[off + 3] << 16) |
                (static_cast<u32>(image.text[off + 4]) << 24);
      if (at + 5 + rel == callee_addr) return (at + 5) & 1u;
    }
    ADD_FAILURE() << caller << " has no call to " << callee;
    return 0u;
  };
  EXPECT_EQ(return_parity_of_call("sys_poll", "do_sys_poll"), 1u);   // odd
  EXPECT_EQ(return_parity_of_call("do_sys_poll", "do_poll"), 0u);    // even
}

TEST(KernelBuilder, BlockedScheduleCallsReturnToEvenAddresses) {
  // retry_while_eagain forces even return addresses on its schedule call so
  // blocked tasks resumed under a missing view trap on 0F 0B (lazy case).
  const KernelImage& image = built_kernel();
  GVirt schedule = image.symbols.must_addr("schedule");
  int checked = 0;
  for (const char* blocking_fn :
       {"pipe_poll", "__skb_recv_datagram", "inet_csk_accept",
        "do_nanosleep", "n_tty_read", "pipe_read"}) {
    const hv::Symbol* fn =
        image.symbols.find_covering(image.symbols.must_addr(blocking_fn));
    for (GVirt at = fn->address; at < fn->address + fn->size; ++at) {
      u32 off = at - image.text_base;
      if (image.text[off] != 0xE8) continue;
      u32 rel = image.text[off + 1] | (image.text[off + 2] << 8) |
                (image.text[off + 3] << 16) |
                (static_cast<u32>(image.text[off + 4]) << 24);
      if (at + 5 + rel == schedule) {
        EXPECT_EQ((at + 5) & 1u, 0u) << blocking_fn;
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 6);
}

TEST(KernelBuilder, DeterministicAcrossBuilds) {
  const KernelImage& a = built_kernel();
  KernelImage b = KernelBuilder::build(
      make_base_kernel_blueprint(),
      mem::GuestLayout::kernel_va(mem::GuestLayout::kKernelCodePhys));
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.functions.size(), b.functions.size());
}

TEST(KernelBuilder, ModuleRelocation) {
  const KernelImage& kernel = built_kernel();
  Blueprint bp = make_e1000_blueprint();
  ModuleImage at_a = KernelBuilder::build_module(bp, "e1000", 0xC1800000,
                                                 kernel.symbols);
  ModuleImage at_b = KernelBuilder::build_module(bp, "e1000", 0xC1900000,
                                                 kernel.symbols);
  EXPECT_EQ(at_a.text.size(), at_b.text.size());
  // Module-relative symbols are identical regardless of load address.
  EXPECT_EQ(at_a.symbols_rel.must_addr("e1000_intr"),
            at_b.symbols_rel.must_addr("e1000_intr"));
  // But the relocated bytes differ (calls into the base kernel are
  // pc-relative).
  EXPECT_NE(at_a.text, at_b.text);
}

TEST(KernelBuilder, ModuleCallsResolveAgainstKernelSymbols) {
  const KernelImage& kernel = built_kernel();
  Blueprint bp = make_e1000_blueprint();
  ModuleImage img =
      KernelBuilder::build_module(bp, "e1000", 0xC1800000, kernel.symbols);
  // e1000_clean_rx_irq calls netif_rx in the base kernel: find a call whose
  // target lands exactly on netif_rx.
  GVirt netif_rx = kernel.symbols.must_addr("netif_rx");
  bool found = false;
  for (u32 off = 0; off + 5 <= img.text.size(); ++off) {
    if (img.text[off] != 0xE8) continue;
    u32 rel = img.text[off + 1] | (img.text[off + 2] << 8) |
              (img.text[off + 3] << 16) |
              (static_cast<u32>(img.text[off + 4]) << 24);
    if (img.base + off + 5 + rel == netif_rx) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(KernelBuilder, TotalKernelSizeIsRealistic) {
  const KernelImage& image = built_kernel();
  // Comparable to a trimmed 2.6-era kernel text: several hundred KB.
  EXPECT_GT(image.text.size(), 400u << 10);
  EXPECT_LT(image.text.size(), 4u << 20);
}

}  // namespace
}  // namespace fc::os
