// Lockstep byte-equivalence: two identical guest systems — one with the
// decoded-block cache, one without — are stepped one instruction at a time
// through the full integration workload (engine enabled, app bound to its
// view). After every step the architectural state (registers, pc, flags,
// mode), the simulated cycle count, and the raw VM exit must match exactly.
// This is the strongest transparency check the cache has: any divergence in
// fetch semantics, decode results, TLB charging, or exit behaviour shows up
// at the exact step it happens.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

struct LockstepGuest {
  explicit LockstepGuest(bool block_cache) {
    sys.vcpu().set_block_cache_enabled(block_cache);
    engine = std::make_unique<core::FaceChangeEngine>(sys.hv(),
                                                      sys.os().kernel());
    engine->enable();
  }

  void start(const std::string& app, const std::string& view_app,
             u32 iterations) {
    engine->bind(app, engine->load_view(harness::profile_of(view_app)));
    apps::AppScenario scenario = apps::make_app(view_app == app ? app : "gzip",
                                                iterations);
    pid = sys.os().spawn(app, scenario.model);
    scenario.install_environment(sys.os());
  }

  harness::GuestSystem sys;
  std::unique_ptr<core::FaceChangeEngine> engine;
  u32 pid = 0;
};

/// Step both guests to completion, asserting equality after every step.
void run_lockstep(LockstepGuest& cached, LockstepGuest& plain,
                  Cycles max_cycles) {
  ASSERT_EQ(cached.pid, plain.pid);
  u64 steps = 0;
  std::optional<hv::RunOutcome> oc, op;
  while (cached.sys.vcpu().cycles() < max_cycles) {
    cpu::Exit ec, ep;
    oc = cached.sys.hv().step_one(&ec);
    op = plain.sys.hv().step_one(&ep);
    ++steps;
    const cpu::Regs& rc = cached.sys.vcpu().regs();
    const cpu::Regs& rp = plain.sys.vcpu().regs();
    bool same = ec.reason == ep.reason && ec.pc == ep.pc && oc == op &&
                rc.gpr == rp.gpr && rc.pc == rp.pc && rc.zf == rp.zf &&
                rc.mode == rp.mode &&
                cached.sys.vcpu().cycles() == plain.sys.vcpu().cycles();
    ASSERT_TRUE(same) << "lockstep divergence at step " << steps
                      << ": cached pc=0x" << std::hex << rc.pc
                      << " cycles=" << std::dec << cached.sys.vcpu().cycles()
                      << " exit=" << static_cast<int>(ec.reason)
                      << " | uncached pc=0x" << std::hex << rp.pc
                      << " cycles=" << std::dec << plain.sys.vcpu().cycles()
                      << " exit=" << static_cast<int>(ep.reason);
    if (oc.has_value()) break;  // both ended identically (checked above)
    if ((steps & 0x3FF) == 0 &&
        cached.sys.os().task_zombie_or_dead(cached.pid))
      break;
  }
  // The workload actually ran to completion on both sides.
  EXPECT_TRUE(cached.sys.os().task_zombie_or_dead(cached.pid));
  EXPECT_TRUE(plain.sys.os().task_zombie_or_dead(plain.pid));
  EXPECT_GT(cached.sys.vcpu().block_cache().stats().insn_hits, 1000u);
  EXPECT_EQ(plain.sys.vcpu().block_cache().stats().insn_hits, 0u);
}

class LockstepEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(LockstepEquivalence, CachedAndUncachedVcpusNeverDiverge) {
  LockstepGuest cached(/*block_cache=*/true);
  LockstepGuest plain(/*block_cache=*/false);
  cached.start(GetParam(), GetParam(), 6);
  plain.start(GetParam(), GetParam(), 6);
  run_lockstep(cached, plain, 900'000'000);
}

INSTANTIATE_TEST_SUITE_P(Apps, LockstepEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& param_info) {
                           return param_info.param;
                         });

// The hostile path: a mismatched view forces UD2 traps, recoveries (code
// rewrites through the write barrier), and instant-recovery checks — the
// cache must stay byte-equivalent through all of it.
TEST(LockstepEquivalence2, RecoveryHeavyRunNeverDiverges) {
  LockstepGuest cached(/*block_cache=*/true);
  LockstepGuest plain(/*block_cache=*/false);
  cached.start("intruder", "top", 4);
  plain.start("intruder", "top", 4);
  run_lockstep(cached, plain, 600'000'000);
  EXPECT_GT(cached.engine->recovery_log().size(), 0u);
  EXPECT_EQ(cached.engine->recovery_log().size(),
            plain.engine->recovery_log().size());
}

}  // namespace
}  // namespace fc
