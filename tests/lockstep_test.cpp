// Lockstep byte-equivalence: two identical guest systems — one with the
// decoded-block cache, one without — are stepped one instruction at a time
// through the full integration workload (engine enabled, app bound to its
// view). After every step the architectural state (registers, pc, flags,
// mode), the simulated cycle count, and the raw VM exit must match exactly.
// This is the strongest transparency check the cache has: any divergence in
// fetch semantics, decode results, TLB charging, or exit behaviour shows up
// at the exact step it happens.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

enum class Tier { kUncached, kBlockOnly, kTrace };

struct LockstepGuest {
  explicit LockstepGuest(Tier tier) {
    sys.vcpu().set_block_cache_enabled(tier != Tier::kUncached);
    sys.vcpu().set_trace_cache_enabled(tier == Tier::kTrace);
    // Promote every block on its first taken branch: maximises trace
    // coverage, so the lockstep sweep exercises the dispatcher (and its
    // side exits) on every app rather than only the hottest loops.
    if (tier == Tier::kTrace) sys.vcpu().set_trace_hot_threshold(1);
    engine = std::make_unique<core::FaceChangeEngine>(sys.hv(),
                                                      sys.os().kernel());
    engine->enable();
  }

  void start(const std::string& app, const std::string& view_app,
             u32 iterations) {
    engine->bind(app, engine->load_view(harness::profile_of(view_app)));
    apps::AppScenario scenario = apps::make_app(view_app == app ? app : "gzip",
                                                iterations);
    pid = sys.os().spawn(app, scenario.model);
    scenario.install_environment(sys.os());
  }

  harness::GuestSystem sys;
  std::unique_ptr<core::FaceChangeEngine> engine;
  u32 pid = 0;
};

/// Step both guests to completion, asserting equality after every step.
void run_lockstep(LockstepGuest& cached, LockstepGuest& plain,
                  Cycles max_cycles, Tier cached_tier = Tier::kBlockOnly) {
  ASSERT_EQ(cached.pid, plain.pid);
  u64 steps = 0;
  std::optional<hv::RunOutcome> oc, op;
  while (cached.sys.vcpu().cycles() < max_cycles) {
    cpu::Exit ec, ep;
    oc = cached.sys.hv().step_one(&ec);
    op = plain.sys.hv().step_one(&ep);
    ++steps;
    const cpu::Regs& rc = cached.sys.vcpu().regs();
    const cpu::Regs& rp = plain.sys.vcpu().regs();
    bool same = ec.reason == ep.reason && ec.pc == ep.pc && oc == op &&
                rc.gpr == rp.gpr && rc.pc == rp.pc && rc.zf == rp.zf &&
                rc.mode == rp.mode &&
                cached.sys.vcpu().cycles() == plain.sys.vcpu().cycles() &&
                cached.sys.hv().machine().mmu().stats().tlb_misses ==
                    plain.sys.hv().machine().mmu().stats().tlb_misses;
    ASSERT_TRUE(same) << "lockstep divergence at step " << steps
                      << ": cached pc=0x" << std::hex << rc.pc
                      << " cycles=" << std::dec << cached.sys.vcpu().cycles()
                      << " tlb_misses="
                      << cached.sys.hv().machine().mmu().stats().tlb_misses
                      << " exit=" << static_cast<int>(ec.reason)
                      << " | uncached pc=0x" << std::hex << rp.pc
                      << " cycles=" << std::dec << plain.sys.vcpu().cycles()
                      << " tlb_misses="
                      << plain.sys.hv().machine().mmu().stats().tlb_misses
                      << " exit=" << static_cast<int>(ep.reason);
    if (oc.has_value()) break;  // both ended identically (checked above)
    if ((steps & 0x3FF) == 0 &&
        cached.sys.os().task_zombie_or_dead(cached.pid))
      break;
  }
  // The workload actually ran to completion on both sides, and the tier
  // under test actually carried execution.
  EXPECT_TRUE(cached.sys.os().task_zombie_or_dead(cached.pid));
  EXPECT_TRUE(plain.sys.os().task_zombie_or_dead(plain.pid));
  EXPECT_EQ(plain.sys.vcpu().block_cache().stats().insn_hits, 0u);
  if (cached_tier == Tier::kTrace) {
    EXPECT_GT(cached.sys.vcpu().trace_cache().stats().dispatched, 0u);
    EXPECT_GT(cached.sys.vcpu().trace_cache().stats().trace_insns, 1000u);
  } else {
    EXPECT_GT(cached.sys.vcpu().block_cache().stats().insn_hits, 1000u);
    EXPECT_EQ(cached.sys.vcpu().trace_cache().stats().dispatched, 0u);
  }
}

class LockstepEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(LockstepEquivalence, CachedAndUncachedVcpusNeverDiverge) {
  LockstepGuest cached(Tier::kBlockOnly);
  LockstepGuest plain(Tier::kUncached);
  cached.start(GetParam(), GetParam(), 6);
  plain.start(GetParam(), GetParam(), 6);
  run_lockstep(cached, plain, 900'000'000);
}

INSTANTIATE_TEST_SUITE_P(Apps, LockstepEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& param_info) {
                           return param_info.param;
                         });

// The trace tier against the uncached interpreter, hot threshold 1 so
// essentially every loop is promoted and dispatched. Per-step equality of
// registers, cycles and TLB-miss counts is the strongest form of the
// tiering contract: every hoisted check, fused pair, batched segment and
// side exit must be invisible to the architecture and the perf model.
class TraceLockstepEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(TraceLockstepEquivalence, TraceTierAndUncachedVcpusNeverDiverge) {
  LockstepGuest traced(Tier::kTrace);
  LockstepGuest plain(Tier::kUncached);
  traced.start(GetParam(), GetParam(), 6);
  plain.start(GetParam(), GetParam(), 6);
  run_lockstep(traced, plain, 900'000'000, Tier::kTrace);
}

INSTANTIATE_TEST_SUITE_P(Apps, TraceLockstepEquivalence,
                         ::testing::ValuesIn(apps::all_app_names()),
                         [](const auto& param_info) {
                           return param_info.param;
                         });

// The hostile path: a mismatched view forces UD2 traps, recoveries (code
// rewrites through the write barrier), and instant-recovery checks — the
// cache must stay byte-equivalent through all of it.
TEST(LockstepEquivalence2, RecoveryHeavyRunNeverDiverges) {
  LockstepGuest cached(Tier::kBlockOnly);
  LockstepGuest plain(Tier::kUncached);
  cached.start("intruder", "top", 4);
  plain.start("intruder", "top", 4);
  run_lockstep(cached, plain, 600'000'000);
  EXPECT_GT(cached.engine->recovery_log().size(), 0u);
  EXPECT_EQ(cached.engine->recovery_log().size(),
            plain.engine->recovery_log().size());
}

// Same hostile path at the trace tier: recoveries rewrite code frames that
// may hold live traces, so the write barrier's trace retirement is on the
// critical path of every step.
TEST(LockstepEquivalence2, TraceTierRecoveryHeavyRunNeverDiverges) {
  LockstepGuest traced(Tier::kTrace);
  LockstepGuest plain(Tier::kUncached);
  traced.start("intruder", "top", 4);
  plain.start("intruder", "top", 4);
  run_lockstep(traced, plain, 600'000'000, Tier::kTrace);
  EXPECT_GT(traced.engine->recovery_log().size(), 0u);
  EXPECT_EQ(traced.engine->recovery_log().size(),
            plain.engine->recovery_log().size());
}

}  // namespace
}  // namespace fc
