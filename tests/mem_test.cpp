// Memory subsystem: host frames, EPT structure and switching semantics,
// guest page tables, two-stage translation, TLB invalidation, recycling,
// the thread-local page arena, and the COW statistics unit contract.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/machine.hpp"
#include "mem/page_arena.hpp"

namespace fc::mem {
namespace {

TEST(HostMemory, AllocatesZeroedFrames) {
  HostMemory host;
  HostFrame f = host.alloc_frame();
  for (u32 i = 0; i < kPageSize; i += 512) EXPECT_EQ(host.read8(f, i), 0);
  host.write32(f, 128, 0xDEADBEEF);
  EXPECT_EQ(host.read32(f, 128), 0xDEADBEEFu);
}

TEST(PageArena, RecyclesPagesWithoutGlobalAllocations) {
  ArenaStats before = arena_stats();
  {
    PagePtr a = alloc_page_zeroed();
    EXPECT_EQ(a.get()[0], 0);
    EXPECT_EQ(a.get()[kPageSize - 1], 0);
    a.get()[17] = 0xAB;
  }
  // The page went back to the free list; the next alloc reuses it (same
  // thread) without another slab refill.
  ArenaStats mid = arena_stats();
  EXPECT_EQ(mid.frees, before.frees + 1);
  PagePtr b = alloc_page();
  ArenaStats after = arena_stats();
  EXPECT_EQ(after.allocs, mid.allocs + 1);
  EXPECT_EQ(after.slab_refills, mid.slab_refills);  // served from free list
  // Arena pages are page-aligned (slabs are carved on 4 KiB boundaries).
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.get()) % kPageSize, 0u);
}

// The unit contract: cow_suppressed_writes counts suppressed write *calls*
// (one per elided write8/write32/write_bytes/zero_frame), never bytes.
TEST(CowStats, SuppressedWritesCountCallsAcrossAllWritePaths) {
  SharedFrameStore store;
  std::vector<u8> page(kPageSize, 0x5A);
  u32 id = store.add_page(page);
  std::vector<u8> zeros(kPageSize, 0x00);
  u32 zero_id = store.add_page(zeros);
  store.freeze();

  HostMemory host;
  host.attach_store(&store);
  HostFrame f = host.adopt_shared(id);

  // write8: four same-value calls = four suppressed writes (per call, so
  // trivially also per byte for the 1-byte path).
  for (u32 i = 0; i < 4; ++i) host.write8(f, i, 0x5A);
  EXPECT_EQ(host.cow_suppressed_writes(), 4u);
  // write32: one same-value call covering 4 bytes = ONE suppressed write.
  host.write32(f, 8, 0x5A5A5A5Au);
  EXPECT_EQ(host.cow_suppressed_writes(), 5u);
  // write_bytes: one same-value call covering 4 KiB = ONE suppressed write.
  host.write_bytes(f, 0, page);
  EXPECT_EQ(host.cow_suppressed_writes(), 6u);
  EXPECT_EQ(host.cow_promotions(), 0u);
  EXPECT_TRUE(host.is_shared(f));

  // zero_frame on an already-zero-backed frame: one suppressed write.
  HostFrame z = host.alloc_frame();
  host.zero_frame(z);
  EXPECT_EQ(host.cow_suppressed_writes(), 7u);
  // zero_frame on a shared all-zero page: bytes unchanged (re-backed by the
  // canonical zero page) — also one suppressed write, no promotion.
  HostFrame zs = host.adopt_shared(zero_id);
  host.zero_frame(zs);
  EXPECT_EQ(host.cow_suppressed_writes(), 8u);
  EXPECT_TRUE(host.is_zero_backed(zs));
  EXPECT_EQ(host.cow_promotions(), 0u);

  // Divergent writes are never "suppressed": promotion + real write.
  host.write32(f, 16, 0x11111111u);
  EXPECT_EQ(host.cow_promotions(), 1u);
  EXPECT_EQ(host.cow_suppressed_writes(), 8u);
  EXPECT_TRUE(host.is_private(f));
  // Private frames take the pre-COW path: no suppression bookkeeping.
  host.write8(f, 16, 0x11);
  EXPECT_EQ(host.cow_suppressed_writes(), 8u);

  // reshare: the promoted frame's bytes were restored to the store page's
  // contents, so reshare_identical() folds it back and counts it.
  host.write32(f, 16, 0x5A5A5A5Au);
  EXPECT_TRUE(host.is_private(f));
  EXPECT_EQ(host.reshare_identical(), 1u);
  EXPECT_EQ(host.cow_reshares(), 1u);
  EXPECT_TRUE(host.is_shared(f));
}

// Batched refcounts: ref/unref traffic is accumulated per-VM and flushed at
// sync points; after a flush attached_refs() is exact (the quiescence
// contract), and teardown returns the store to its prior counts.
TEST(SharedFrameStoreRefs, BatchedDeltasAreExactAtQuiescence) {
  SharedFrameStore store;
  std::vector<u8> a(kPageSize, 0xAA);
  std::vector<u8> b(kPageSize, 0xBB);
  u32 ida = store.add_page(a);
  u32 idb = store.add_page(b);
  store.freeze();
  EXPECT_EQ(store.attached_refs(), 0u);

  {
    HostMemory host;
    host.attach_store(&store);
    host.adopt_shared(ida);
    host.adopt_shared(ida);
    HostFrame fb = host.adopt_shared(idb);
    // Nothing flushed yet: adopts are batched locally.
    EXPECT_EQ(store.attached_refs(), 0u);
    // Promote one frame (an unref event), then flush: net = what is still
    // shared right now.
    host.write8(fb, 0, 0x01);
    EXPECT_TRUE(host.is_private(fb));
    host.flush_shared_refs();
    EXPECT_EQ(store.page_refs(ida), 2u);
    EXPECT_EQ(store.page_refs(idb), 0u);
    EXPECT_EQ(store.attached_refs(), 2u);
  }
  // Teardown flushed the release deltas: back to the pre-VM counts.
  EXPECT_EQ(store.attached_refs(), 0u);
  EXPECT_EQ(store.page_refs(ida), 0u);

  // Direct (unbatched) ref/unref still works for non-HostMemory users.
  store.ref(ida);
  EXPECT_EQ(store.attached_refs(), 1u);
  store.unref(ida);
  EXPECT_EQ(store.attached_refs(), 0u);
}

TEST(Ept, MapAndTranslate) {
  Ept ept;
  ept.set_pde(0, ept.alloc_table());
  ept.map(0x3000, 42);
  auto f = ept.translate(0x3123);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, 42u);
  EXPECT_FALSE(ept.translate(0x5000).has_value());  // non-present PTE
  EXPECT_FALSE(ept.translate(0x800000).has_value());  // no PDE
}

TEST(Ept, PdeSwapChangesWholeRegion) {
  Ept ept;
  EptTableId identity = ept.alloc_table();
  EptTableId shadow = ept.alloc_table();
  ept.set_pde(0, identity);
  ept.map(0x1000, 1);
  ept.copy_table(shadow, identity);
  ept.set_pte(shadow, Ept::pte_slot_of(0x1000), EptEntry{true, 99});

  EXPECT_EQ(*ept.translate(0x1000), 1u);
  ept.set_pde(0, shadow);  // step 3A: one PDE write switches the region
  EXPECT_EQ(*ept.translate(0x1000), 99u);
  ept.set_pde(0, identity);
  EXPECT_EQ(*ept.translate(0x1000), 1u);
}

TEST(Ept, WriteMeteringCountsRealWritesOnly) {
  Ept ept;
  EptTableId a = ept.alloc_table();
  EptTableId b = ept.alloc_table();
  ept.reset_stats();
  ept.set_pde(0, a);
  EXPECT_EQ(ept.stats().pde_writes, 1u);
  ept.set_pde(0, a);  // no-op: same table
  EXPECT_EQ(ept.stats().pde_writes, 1u);
  ept.set_pde(0, b);
  EXPECT_EQ(ept.stats().pde_writes, 2u);
  ept.set_pte(b, 5, EptEntry{true, 7});
  EXPECT_EQ(ept.stats().pte_writes, 1u);
}

TEST(Ept, GenerationBumpsOnInvalidate) {
  Ept ept;
  u64 g0 = ept.generation();
  ept.invalidate();
  EXPECT_EQ(ept.generation(), g0 + 1);
  EXPECT_EQ(ept.stats().invalidations, 1u);
}

TEST(Ept, ScopedInvalidationLeavesGenerationAlone) {
  Ept ept;
  u64 g0 = ept.generation();
  ept.note_scoped_invalidation();
  EXPECT_EQ(ept.generation(), g0);
  EXPECT_EQ(ept.stats().scoped_invalidations, 1u);
  EXPECT_EQ(ept.stats().invalidations, 0u);
}

TEST(Ept, MapBeyondCoveredRangeIsFatal) {
  // Regression: map() used to index pdes_[] before any bounds check, an
  // out-of-bounds read for any GPA past the last PDE.
  Ept ept;
  ept.set_pde(0, ept.alloc_table());
  EXPECT_DEATH(ept.map(Ept::kPdeCount * Ept::kPdeSpan, 7),
               "outside EPT range");
}

TEST(Machine, BootIdentityMapsGuestPhysical) {
  Machine machine(8);  // 8 MiB
  EXPECT_EQ(machine.guest_phys_pages(), 2048u);
  machine.pwrite32(0x1000, 0xABCD1234);
  EXPECT_EQ(machine.pread32(0x1000), 0xABCD1234u);
  // boot frame == current frame before any view redirection
  EXPECT_EQ(machine.boot_frame_for(0x1000), machine.frame_for(0x1000));
}

TEST(Machine, PwriteBytesCrossesPages) {
  Machine machine(8);
  std::vector<u8> data(kPageSize + 100, 0x5A);
  machine.pwrite_bytes(kPageSize - 50, data);
  std::vector<u8> back(data.size());
  machine.pread_bytes(kPageSize - 50, back);
  EXPECT_EQ(back, data);
}

TEST(Machine, PhysAllocatorRecyclesFreedExtents) {
  Machine machine(8);
  GPhys a = machine.alloc_phys_pages(4, 0x200000, 0x400000);
  GPhys b = machine.alloc_phys_pages(4, 0x200000, 0x400000);
  EXPECT_NE(a, b);
  machine.pwrite32(a, 0x1111);
  machine.free_phys_pages(a, 4, 0x200000);
  GPhys c = machine.alloc_phys_pages(4, 0x200000, 0x400000);
  EXPECT_EQ(c, a);                        // recycled
  EXPECT_EQ(machine.pread32(c), 0u);      // zeroed on reuse
}

TEST(Machine, RegionExhaustionIsFatal) {
  Machine machine(8);
  EXPECT_DEATH(machine.alloc_phys_pages(3, 0x300000, 0x302000),
               "region exhausted");
}

class MmuFixture : public ::testing::Test {
 protected:
  MmuFixture() : machine_(16), builder_(machine_, 0x1000, 0x100000) {
    dir_ = builder_.create_directory();
    // Map VA 0xC0000000+ → PA 0 (a small direct map) and a user page.
    builder_.map(dir_, kKernelBase, 0, 64);
    builder_.map(dir_, 0x08048000, 0x200000, 4);
    machine_.mmu().set_cr3(dir_);
  }
  Machine machine_;
  GuestPageTableBuilder builder_;
  GPhys dir_;
};

TEST_F(MmuFixture, TwoStageTranslation) {
  machine_.pwrite32(0x200000, 0xFEEDFACE);
  EXPECT_EQ(machine_.mmu().read32(0x08048000), 0xFEEDFACEu);
  machine_.pwrite32(0x2000, 0x11223344);
  EXPECT_EQ(machine_.mmu().read32(kKernelBase + 0x2000), 0x11223344u);
}

TEST_F(MmuFixture, UnmappedVirtualFails) {
  EXPECT_FALSE(machine_.mmu().translate_page(0x10000000).has_value());
  EXPECT_FALSE(machine_.mmu().virt_to_phys(0x10000000).has_value());
}

TEST_F(MmuFixture, TlbHitsAfterFirstWalk) {
  Mmu& mmu = machine_.mmu();
  mmu.reset_stats();
  (void)mmu.translate_page(0x08048000);
  EXPECT_EQ(mmu.stats().tlb_misses, 1u);
  (void)mmu.translate_page(0x08048000);
  EXPECT_EQ(mmu.stats().tlb_hits, 1u);
  EXPECT_EQ(mmu.stats().tlb_misses, 1u);
}

TEST_F(MmuFixture, EptInvalidationForcesRewalk) {
  Mmu& mmu = machine_.mmu();
  (void)mmu.translate_page(0x08048000);
  mmu.reset_stats();
  machine_.ept().invalidate();
  (void)mmu.translate_page(0x08048000);
  EXPECT_EQ(mmu.stats().tlb_misses, 1u);  // generation mismatch → walk
}

TEST_F(MmuFixture, ScopedInvalidationDropsOnlyMatchingEntries) {
  Mmu& mmu = machine_.mmu();
  // Warm two entries: a kernel page backed by gpa 0x2000 and a user page
  // backed by gpa 0x200000.
  (void)mmu.translate_page(kKernelBase + 0x2000);
  (void)mmu.translate_page(0x08048000);
  u64 g0 = machine_.ept().generation();

  mmu.reset_stats();
  GpaRange ranges[] = {{0x2000, 0x3000}};
  u32 dropped = mmu.invalidate_gpa_ranges(ranges);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(mmu.stats().scoped_flushes, 1u);
  EXPECT_EQ(mmu.stats().scoped_entries_dropped, 1u);
  EXPECT_EQ(machine_.ept().generation(), g0);  // no global shootdown

  // The kernel entry re-walks; the user entry is still hot.
  (void)mmu.translate_page(kKernelBase + 0x2000);
  EXPECT_EQ(mmu.stats().tlb_misses, 1u);
  (void)mmu.translate_page(0x08048000);
  EXPECT_EQ(mmu.stats().tlb_hits, 1u);
}

TEST_F(MmuFixture, ScopedInvalidationMissesNothingItShouldDrop) {
  Mmu& mmu = machine_.mmu();
  (void)mmu.translate_page(kKernelBase + 0x2000);
  // A range that does not cover gpa 0x2000 must leave the entry hot.
  GpaRange miss[] = {{0x3000, 0x5000}};
  EXPECT_EQ(mmu.invalidate_gpa_ranges(miss), 0u);
  mmu.reset_stats();
  (void)mmu.translate_page(kKernelBase + 0x2000);
  EXPECT_EQ(mmu.stats().tlb_hits, 1u);
}

TEST_F(MmuFixture, EptRedirectionIsObservedThroughTheSameVirtualAddress) {
  Mmu& mmu = machine_.mmu();
  GVirt va = kKernelBase + 0x3000;
  machine_.pwrite32(0x3000, 0xAAAAAAAA);
  EXPECT_EQ(mmu.read32(va), 0xAAAAAAAAu);

  // Redirect the guest-physical page to a fresh shadow frame (what a
  // kernel view switch does) — same VA now reads the shadow contents.
  HostFrame shadow = machine_.host().alloc_frame();
  machine_.host().write32(shadow, 0, 0xBBBBBBBB);
  machine_.ept().map(0x3000, shadow);
  machine_.ept().invalidate();
  EXPECT_EQ(mmu.read32(va), 0xBBBBBBBBu);
  // The boot frame still holds the original (pristine) bytes.
  EXPECT_EQ(machine_.host().read32(machine_.boot_frame_for(0x3000), 0),
            0xAAAAAAAAu);
}

TEST_F(MmuFixture, FetchCrossesPageBoundary) {
  Mmu& mmu = machine_.mmu();
  machine_.pwrite8(0x200FFF, 0xE8);  // last byte of the first user page
  machine_.pwrite8(0x201000, 0x11);
  u8 window[8] = {};
  u32 got = mmu.fetch(0x08048FFF, window, 5);
  EXPECT_EQ(got, 5u);
  EXPECT_EQ(window[0], 0xE8);
  EXPECT_EQ(window[1], 0x11);
}

TEST_F(MmuFixture, FetchStopsAtUnmappedPage) {
  Mmu& mmu = machine_.mmu();
  u8 window[8] = {};
  // Last mapped user page is 0x0804B000..0x0804C000.
  u32 got = mmu.fetch(0x0804BFFE, window, 7);
  EXPECT_EQ(got, 2u);
}

TEST_F(MmuFixture, SharedKernelHalf) {
  GPhys dir2 = builder_.create_directory();
  builder_.share_kernel_half(dir2, dir_);
  machine_.pwrite32(0x4000, 0x77777777);
  machine_.mmu().set_cr3(dir2);
  EXPECT_EQ(machine_.mmu().read32(kKernelBase + 0x4000), 0x77777777u);
  // But the user half is not shared.
  EXPECT_FALSE(machine_.mmu().translate_page(0x08048000).has_value());
}

}  // namespace
}  // namespace fc::mem
