// Smaller API surfaces: similarity-matrix analytics on synthetic configs,
// interrupt-profile export, behaviour-monitor chaining/disable, event-queue
// clearing, and support utilities.
#include <gtest/gtest.h>

#include "core/behavior.hpp"
#include "core/similarity.hpp"
#include "harness/harness.hpp"
#include "hv/event_queue.hpp"
#include "support/hexdump.hpp"

namespace fc {
namespace {

core::KernelViewConfig synthetic(const std::string& name, u32 base,
                                 u32 size) {
  core::KernelViewConfig cfg;
  cfg.app_name = name;
  cfg.base.insert(base, base + size);
  return cfg;
}

TEST(Similarity, MatrixAnalyticsOnSyntheticConfigs) {
  // a: [0,100); b: [50,150); c: [200,300) — a∩b=50, c disjoint.
  std::vector<core::KernelViewConfig> configs = {
      synthetic("a", 0, 100), synthetic("b", 50, 100),
      synthetic("c", 200, 100)};
  core::SimilarityMatrix m = core::compute_similarity(configs);
  EXPECT_EQ(m.sizes_bytes[0], 100u);
  EXPECT_EQ(m.overlap[0][1], 50u);
  EXPECT_DOUBLE_EQ(m.similarity[0][1], 0.5);
  EXPECT_DOUBLE_EQ(m.similarity[0][2], 0.0);
  EXPECT_DOUBLE_EQ(m.similarity[1][0], m.similarity[0][1]);
  EXPECT_DOUBLE_EQ(m.min_similarity(), 0.0);
  EXPECT_DOUBLE_EQ(m.max_similarity(), 0.5);
  std::string table = m.render();
  EXPECT_NE(table.find("[0KB]"), std::string::npos);
  EXPECT_NE(table.find("50.0%"), std::string::npos);
}

TEST(Profiler, InterruptProfileIsExportable) {
  harness::GuestSystem sys;
  core::Profiler profiler(sys.hv(), sys.os().kernel());
  profiler.attach();
  sys.run_for(10'000'000);  // idle + timer interrupts only
  profiler.detach();
  core::KernelViewConfig irq = profiler.interrupt_profile();
  EXPECT_GT(irq.base.size_bytes(), 1000u);
  GVirt timer = sys.os().kernel().symbols.must_addr("timer_interrupt");
  EXPECT_TRUE(irq.base.contains(timer));
}

TEST(BehaviorMonitor, DisableRestoresTheChainedHandler) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("top", engine.load_view(harness::profile_of("top")));
  {
    core::BehaviorMonitor monitor(sys.hv(), sys.os().kernel());
    monitor.enable(&engine);
    sys.run_for(3'000'000);
    monitor.disable();
  }
  // The engine is the handler again; enforcement still works end to end.
  apps::AppScenario top = apps::make_app("top", 5);
  u32 pid = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());
  EXPECT_NE(sys.run_until_exit(pid, 600'000'000),
            hv::RunOutcome::kGuestFault);
  EXPECT_GT(engine.stats().view_switches(), 0u);
}

TEST(EventQueue, ClearDropsEverything) {
  hv::EventQueue queue;
  int fired = 0;
  queue.schedule_at(10, [&] { ++fired; });
  queue.schedule_at(20, [&] { ++fired; });
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.run_due(100), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Support, HexFormattersMatchThePapersStyle) {
  EXPECT_EQ(hex32(0xC021A526), "0xc021a526");
  std::vector<u8> bytes = {0x0F, 0x0B, 0x0F, 0x0B};
  EXPECT_EQ(byte_dump(bytes), "0xf 0xb 0xf 0xb");
}

TEST(Support, StableHashIsStable) {
  EXPECT_EQ(stable_hash("schedule"), stable_hash("schedule"));
  EXPECT_NE(stable_hash("schedule"), stable_hash("schedulf"));
}

TEST(Support, RngIsDeterministicAndBounded) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    u32 v = r.between(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Engine, ViewIdsAreStableAndQueryable) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  u32 a = engine.load_view(harness::profile_of("top"));
  u32 b = engine.load_view(harness::profile_of("gzip"));
  EXPECT_NE(a, b);
  ASSERT_NE(engine.view(a), nullptr);
  ASSERT_NE(engine.view(b), nullptr);
  EXPECT_EQ(engine.view(a)->config.app_name, "top");
  EXPECT_EQ(engine.view(b)->config.app_name, "gzip");
  EXPECT_EQ(engine.view(999), nullptr);
  engine.unload_view(a);
  EXPECT_EQ(engine.view(a), nullptr);
  EXPECT_EQ(engine.view_count(), 1u);
}

TEST(Engine, BindToUnknownViewIsFatal) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  EXPECT_DEATH(engine.bind("top", 42), "unknown view");
}

TEST(Recovery, CrossViewScanStatsAreAccounted) {
  // Scans fire when a task switches in while a *custom* view is active —
  // which needs at least two enforced applications time-slicing.
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("top", engine.load_view(harness::profile_of("top")));
  engine.bind("gzip", engine.load_view(harness::profile_of("gzip")));
  apps::AppScenario top = apps::make_app("top", 8);
  apps::AppScenario gzip = apps::make_app("gzip", 8);
  u32 p1 = sys.os().spawn("top", top.model);
  u32 p2 = sys.os().spawn("gzip", gzip.model);
  top.install_environment(sys.os());
  sys.hv().run([&] {
    return sys.os().task_zombie_or_dead(p1) &&
           sys.os().task_zombie_or_dead(p2);
  });
  EXPECT_GT(engine.recovery_stats().cross_view_scans, 0u);
}

}  // namespace
}  // namespace fc
