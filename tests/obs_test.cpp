// Observability subsystem tests: flight-recorder ring semantics, the
// serialized stream format, metrics registry determinism, Chrome-trace
// export, two-run bit-reproducibility, and the PerfModel cross-check —
// cycles charged for a fast-path view switch must equal the sum of the
// per-write and invalidation costs the trace attributes to that switch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "hv/event_queue.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fc {
namespace {

TEST(Recorder, RingWrapKeepsNewestAndCountsDrops) {
  obs::Recorder rec;
  rec.set_capacity(4);
  Cycles clock = 0;
  rec.set_clock(&clock);
  for (u32 i = 0; i < 10; ++i) {
    clock = 100 + i;
    rec.emit(obs::EventKind::kInterrupt, 0, 0, i, 0, 0, 0);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_emitted(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  std::vector<obs::TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: emissions 6..9.
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, 6u + i);
    EXPECT_EQ(events[i].when, 106u + i);
  }
}

TEST(Recorder, SerializeParseRoundTrip) {
  obs::Recorder rec;
  rec.set_capacity(16);
  rec.set_cycles_per_second(100'000'000);
  Cycles clock = 0;
  rec.set_clock(&clock);
  clock = 12345;
  rec.emit(obs::EventKind::kViewSwitch, 0x3, 7, 1, 2, 3, 444);
  clock = 99999;
  rec.emit(obs::EventKind::kUd2Trap, 0x1, 2, 0xC0100000u, 0, 0, 0);

  std::vector<u8> bytes = rec.serialize();
  obs::TraceHeader header;
  std::vector<obs::TraceEvent> events;
  ASSERT_TRUE(obs::parse_trace(bytes, &header, &events));
  EXPECT_EQ(header.version, 1u);
  EXPECT_EQ(header.event_count, 2u);
  EXPECT_EQ(header.total_emitted, 2u);
  EXPECT_EQ(header.cycles_per_second, 100'000'000u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].when, 12345u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kViewSwitch);
  EXPECT_EQ(events[0].flags, 0x3u);
  EXPECT_EQ(events[0].view, 7u);
  EXPECT_EQ(events[0].arg3, 444u);
  EXPECT_EQ(events[1].when, 99999u);
  EXPECT_EQ(events[1].arg0, 0xC0100000u);

  // Corrupt the magic: must be rejected.
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(obs::parse_trace(bytes, &header, &events));
}

TEST(Recorder, NameHashIsStableFnv1a) {
  EXPECT_EQ(obs::name_hash(""), 2166136261u);
  EXPECT_EQ(obs::name_hash("apache"), obs::name_hash("apache"));
  EXPECT_NE(obs::name_hash("apache"), obs::name_hash("vim"));
}

TEST(Metrics, JsonIsDeterministicAndHistogramSurvivesReset) {
  obs::Metrics m;
  m.add("b.counter", 2);
  m.add("a.counter", 1);
  m.gauge_set("depth", 7);
  obs::Histogram& hist = m.histogram("cost");
  obs::Histogram* cached = &hist;
  hist.record(100);
  hist.record(3000);
  std::string first = m.to_json();
  EXPECT_EQ(first, m.to_json());
  // Keys are emitted sorted, so insertion order cannot leak into the JSON.
  EXPECT_LT(first.find("a.counter"), first.find("b.counter"));

  m.reset();
  // The histogram object is zeroed in place, never erased: cached pointers
  // (the engine holds one across runs) stay valid.
  EXPECT_EQ(&m.histogram("cost"), cached);
  EXPECT_EQ(m.histogram("cost").count, 0u);
}

TEST(ChromeTrace, SlicesAndInstantsRenderWithSimulatedTimestamps) {
  std::vector<obs::TraceEvent> events(2);
  events[0].when = 2000;  // stamped at completion; 500-cycle slice
  events[0].kind = obs::EventKind::kViewSwitch;
  events[0].view = 3;
  events[0].arg3 = 500;
  events[1].when = 2100;
  events[1].kind = obs::EventKind::kInterrupt;
  events[1].arg0 = 32;

  std::string json = obs::chrome_trace_json(events, 100'000'000);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("face-change"), std::string::npos);
  EXPECT_NE(json.find("view 3"), std::string::npos);
  // 100 MHz → 10 ns/cycle. The switch spans [1500, 2000] cycles = 5 µs
  // starting at 15 µs; the interrupt is an instant at 21 µs on track 0.
  EXPECT_NE(json.find("\"ts\":15.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":21.000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(EventQueue, ClearIsObservableAndDepthGaugeTracksHighWater) {
  hv::EventQueue q;
  int fired = 0;
  for (int i = 0; i < 5; ++i) q.schedule_at(10 + i, [&] { ++fired; });
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.max_depth(), 5u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.run_due(1000), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.max_depth(), 5u);  // high-water survives clear
}

/// Satellite check: the cycles a fast-path switch charges to the vCPU are
/// exactly the sum of the per-PDE/PTE write costs plus the scoped (or
/// full) invalidation cost — cross-checked from the trace alone.
TEST(ObsIntegration, FastpathSwitchCostMatchesPerfModel) {
#if defined(FC_OBS_DISABLED)
  GTEST_SKIP() << "FC_OBS_DISABLED build: emit sites compiled out";
#endif
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  u32 top = engine.load_view(harness::profile_of("top"));
  u32 vim = engine.load_view(harness::profile_of("gvim"));

  obs::recorder().start();
  engine.force_activate(top);
  engine.force_activate(vim);
  engine.force_activate(top);
  obs::recorder().stop();

  const cpu::PerfModel& pm = sys.vcpu().perf_model();
  std::vector<obs::TraceEvent> events = obs::recorder().snapshot();
  u32 checked = 0;
  u32 last_scoped_dropped = 0;
  for (const obs::TraceEvent& ev : events) {
    if (ev.kind == obs::EventKind::kTlbFlush && (ev.flags & 0x1))
      last_scoped_dropped = ev.arg0;
    if (ev.kind != obs::EventKind::kViewSwitch) continue;
    ASSERT_TRUE(ev.flags & 0x1) << "delta fast path expected";
    Cycles expected = static_cast<Cycles>(ev.arg1) * pm.cost_ept_pde_write +
                      static_cast<Cycles>(ev.arg2) * pm.cost_ept_pte_write;
    if (ev.flags & 0x2) {
      expected += pm.cost_tlb_scoped_base +
                  static_cast<Cycles>(last_scoped_dropped) *
                      pm.cost_tlb_scoped_per_entry;
    } else {
      ASSERT_TRUE(ev.flags & 0x4);
      expected += pm.cost_tlb_flush;
    }
    EXPECT_EQ(ev.arg3, expected)
        << "switch to view " << ev.view << " from " << ev.arg0;
    ++checked;
  }
  EXPECT_EQ(checked, 3u);
  engine.force_activate(core::kFullKernelViewId);
}

/// Determinism contract end-to-end: the same guest scenario recorded twice
/// (fresh guest system each time) serializes to byte-identical streams.
TEST(ObsIntegration, TwoRunsProduceByteIdenticalStreams) {
#if defined(FC_OBS_DISABLED)
  GTEST_SKIP() << "FC_OBS_DISABLED build: emit sites compiled out";
#endif
  harness::profile_of("top");  // memoized profiling happens outside capture

  auto record_run = [] {
    harness::GuestSystem sys;
    core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
    engine.enable();
    engine.bind("top", engine.load_view(harness::profile_of("top")));
    obs::recorder().start();
    apps::AppScenario top = apps::make_app("top", 4);
    u32 pid = sys.os().spawn("top", top.model);
    top.install_environment(sys.os());
    sys.run_until_exit(pid, 600'000'000);
    obs::recorder().stop();
    return obs::recorder().serialize();
  };

  std::vector<u8> first = record_run();
  std::vector<u8> second = record_run();
  ASSERT_GT(first.size(), obs::kSerializedEventSize);
  EXPECT_EQ(first, second);

  // And the stream is a valid, event-bearing recording.
  obs::TraceHeader header;
  std::vector<obs::TraceEvent> events;
  ASSERT_TRUE(obs::parse_trace(first, &header, &events));
  EXPECT_GT(header.event_count, 0u);
  EXPECT_EQ(events.size(), header.event_count);
}

}  // namespace
}  // namespace fc
