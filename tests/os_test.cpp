// Guest OS (minos) tests: process lifecycle, blocking I/O, pipes, signals,
// interval timers, sockets, execve, module loading/hiding, and resource
// recycling — all through the real guest code paths.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

namespace abi = fc::abi;
using os::AppAction;
using os::AppModel;
using os::OsRuntime;

AppAction sys(u32 nr, u32 b = 0, u32 c = 0, u32 d = 0) {
  return AppAction::syscall(nr, b, c, d, 100);
}

/// A scriptable model: runs a fixed list of actions, then exits. Records
/// every syscall result.
class ScriptModel : public AppModel {
 public:
  explicit ScriptModel(std::vector<AppAction> script)
      : script_(std::move(script)) {}
  AppAction next(u32 last, OsRuntime&, u32) override {
    if (step_ > 0) results_.push_back(last);
    if (step_ >= script_.size()) return sys(abi::kSysExit);
    return script_[step_++];
  }
  const std::vector<u32>& results() const { return results_; }

 private:
  std::vector<AppAction> script_;
  std::size_t step_ = 0;
  std::vector<u32> results_;
};

class OsFixture : public ::testing::Test {
 protected:
  harness::GuestSystem sys_;

  std::shared_ptr<ScriptModel> run_script(std::vector<AppAction> script,
                                          const char* comm = "test") {
    auto model = std::make_shared<ScriptModel>(std::move(script));
    u32 pid = sys_.os().spawn(comm, model);
    EXPECT_NE(sys_.run_until_exit(pid, 600'000'000),
              hv::RunOutcome::kGuestFault);
    EXPECT_TRUE(sys_.os().task_zombie_or_dead(pid));
    return model;
  }
};

TEST_F(OsFixture, GetpidAndUname) {
  auto model = run_script({sys(abi::kSysGetpid), sys(abi::kSysUname)});
  ASSERT_EQ(model->results().size(), 2u);
  EXPECT_EQ(model->results()[0], 1u);  // first spawned pid
  EXPECT_EQ(model->results()[1], 0u);
}

TEST_F(OsFixture, FileOpenReadWriteClose) {
  auto model = run_script({
      sys(abi::kSysOpen, os::kPathEtcConf, 0),  // → fd 3
      sys(abi::kSysRead, 3, 4096),              // disk wait, then 4096
      sys(abi::kSysWrite, 3, 512),
      sys(abi::kSysStat, os::kPathEtcConf),
      sys(abi::kSysClose, 3),
  });
  const auto& r = model->results();
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], 3u);
  EXPECT_EQ(r[1], 4096u);
  EXPECT_EQ(r[2], 512u);
  EXPECT_EQ(r[3], 0u);
  EXPECT_EQ(r[4], 0u);
  EXPECT_EQ(sys_.os().counters().fs_bytes_read, 4096u);
  EXPECT_EQ(sys_.os().counters().fs_bytes_written, 512u);
}

TEST_F(OsFixture, DiskReadsGoThroughTheInterruptPath) {
  u64 switches_before = sys_.os().counters().context_switches;
  run_script({
      sys(abi::kSysOpen, os::kPathDataFile, 0),
      sys(abi::kSysRead, 3, 65536),  // offset 0 → disk I/O → block
  });
  // Blocking on disk forces at least one switch to idle and back.
  EXPECT_GT(sys_.os().counters().context_switches, switches_before);
}

TEST_F(OsFixture, ProcReadsAreImmediate) {
  auto model = run_script({
      sys(abi::kSysOpen, os::kPathProcStat, 0),
      sys(abi::kSysRead, 3, 2048),
      sys(abi::kSysGetdents, 3, 128),
  });
  EXPECT_EQ(model->results()[1], 2048u);
  EXPECT_EQ(model->results()[2], 8u);  // first scan returns entries
}

TEST_F(OsFixture, PipeRoundTrip) {
  auto model = run_script({
      sys(abi::kSysPipe),
      sys(abi::kSysWrite, 4, 256),  // wfd = 4 (rfd=3)
      sys(abi::kSysRead, 3, 4096),
  });
  const auto& r = model->results();
  EXPECT_EQ(r[0] & 0xFFFF, 3u);
  EXPECT_EQ(r[0] >> 16, 4u);
  EXPECT_EQ(r[2], 256u);  // read drained exactly what was written
}

TEST_F(OsFixture, TtyReadBlocksUntilKeystroke) {
  sys_.os().schedule_keystrokes(2'000'000, 100'000, 4);
  auto model = run_script({sys(abi::kSysRead, 0, 16)});
  EXPECT_GE(model->results()[0], 1u);
  EXPECT_LE(model->results()[0], 16u);
}

TEST_F(OsFixture, UdpSocketLifecycle) {
  sys_.os().schedule_datagram(3'000'000, 7777, 400);
  auto model = run_script({
      sys(abi::kSysSocket, 2, 2),
      sys(abi::kSysBind, 3, 7777),
      sys(abi::kSysRecvfrom, 3, 2048),
      sys(abi::kSysSendto, 3, 300),
      sys(abi::kSysClose, 3),
  });
  const auto& r = model->results();
  EXPECT_EQ(r[0], 3u);
  EXPECT_EQ(r[1], 0u);
  EXPECT_EQ(r[2], 400u);  // the datagram
  EXPECT_EQ(r[3], 300u);
  EXPECT_EQ(sys_.os().counters().net_bytes_received, 400u);
}

TEST_F(OsFixture, TcpAcceptDeliversRequestData) {
  sys_.os().schedule_connection(3'000'000, 8080, 512);
  auto model = run_script({
      sys(abi::kSysSocket, 2, 1),
      sys(abi::kSysBind, 3, 8080),
      sys(abi::kSysListen, 3),
      sys(abi::kSysAccept, 3),      // → conn fd 4
      sys(abi::kSysRead, 4, 4096),  // request arrives shortly after
      sys(abi::kSysWrite, 4, 1000),
      sys(abi::kSysClose, 4),
  });
  const auto& r = model->results();
  EXPECT_EQ(r[3], 4u);
  EXPECT_EQ(r[4], 512u);
  EXPECT_EQ(r[5], 1000u);
}

TEST_F(OsFixture, TcpConnectCompletesAfterRtt) {
  auto model = run_script({
      sys(abi::kSysSocket, 2, 1),
      sys(abi::kSysConnect, 3, 80),
      sys(abi::kSysSendto, 3, 128),
  });
  EXPECT_EQ(model->results()[1], 0u);
  EXPECT_EQ(model->results()[2], 128u);
}

TEST_F(OsFixture, NanosleepAdvancesJiffies) {
  run_script({sys(abi::kSysNanosleep, 5)});
  EXPECT_GE(sys_.os().jiffies(), 5u);
}

TEST_F(OsFixture, BadFdReadFails) {
  auto model = run_script({sys(abi::kSysRead, 17, 100)});
  // vfs_read's class dispatch finds no handler for an invalid descriptor
  // and the error class marker propagates out as the syscall result.
  EXPECT_EQ(model->results()[0], 0xFFFFFFFFu);
}

TEST_F(OsFixture, Dup2CopiesDescriptors) {
  auto model = run_script({
      sys(abi::kSysOpen, os::kPathProcStat, 0),  // fd 3 (proc: no disk wait)
      sys(abi::kSysDup2, 3, 9),
      sys(abi::kSysRead, 9, 128),
  });
  EXPECT_EQ(model->results()[1], 9u);
  EXPECT_EQ(model->results()[2], 128u);
}

// ---------------------------------------------------------------------------
// fork / wait / execve.
// ---------------------------------------------------------------------------

class ForkParent : public AppModel {
 public:
  AppAction next(u32 last, OsRuntime&, u32) override {
    switch (phase_++) {
      case 0: return sys(abi::kSysFork);
      case 1:
        child_pid_ = last;
        return sys(abi::kSysWait4, last);
      case 2:
        reaped_ = last;
        [[fallthrough]];
      default:
        return sys(abi::kSysExit);
    }
  }
  std::shared_ptr<AppModel> fork_child() override {
    return std::make_shared<ScriptModel>(
        std::vector<AppAction>{sys(abi::kSysGetpid)});
  }
  u32 child_pid_ = 0, reaped_ = 0;

 private:
  int phase_ = 0;
};

TEST_F(OsFixture, ForkWaitReapsChild) {
  auto model = std::make_shared<ForkParent>();
  u32 pid = sys_.os().spawn("parent", model);
  sys_.run_until_exit(pid, 600'000'000);
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(pid));
  EXPECT_GT(model->child_pid_, pid);
  EXPECT_EQ(model->reaped_, model->child_pid_);
  EXPECT_EQ(sys_.os().counters().forks, 1u);
}

TEST_F(OsFixture, ForkReturnsZeroInChild) {
  // The child model records `last` on its first step — which is fork's
  // return value in the child (0).
  class Recorder : public AppModel {
   public:
    AppAction next(u32 last, OsRuntime&, u32) override {
      first_result = last;
      return sys(abi::kSysExit);
    }
    u32 first_result = 0xDEAD;
  };
  class Parent : public AppModel {
   public:
    explicit Parent(std::shared_ptr<Recorder> rec) : rec_(std::move(rec)) {}
    AppAction next(u32, OsRuntime&, u32) override {
      if (phase_++ == 0) return sys(abi::kSysFork);
      return sys(abi::kSysWait4, 0xFFFFFFFF);
    }
    std::shared_ptr<AppModel> fork_child() override { return rec_; }

   private:
    std::shared_ptr<Recorder> rec_;
    int phase_ = 0;
  };
  auto recorder = std::make_shared<Recorder>();
  u32 pid = sys_.os().spawn("parent", std::make_shared<Parent>(recorder));
  sys_.run_until_exit(pid, 600'000'000);
  EXPECT_EQ(recorder->first_result, 0u);
}

TEST_F(OsFixture, WaitWithNoChildrenReturnsEchild) {
  auto model = run_script({sys(abi::kSysWait4, 0xFFFFFFFF)});
  EXPECT_EQ(model->results()[0], 0xFFFFFFF6u);  // -ECHILD
}

TEST_F(OsFixture, ExecveReplacesProgramAndModel) {
  apps::register_utility_binaries(sys_.os());
  u64 tty_before = sys_.os().counters().tty_bytes_written;
  auto model = run_script(
      {sys(abi::kSysExecve, sys_.os().binary_id("cat"))}, "execer");
  // cat reads /etc and writes to the tty; the ScriptModel's exit never runs
  // (the model was replaced), so observe cat's side effects instead.
  EXPECT_GT(sys_.os().counters().tty_bytes_written, tty_before);
}

TEST_F(OsFixture, ForkStormRecyclesResources) {
  // More forks than task slots / would-be page budget: verifies slot and
  // page recycling end to end.
  class Storm : public AppModel {
   public:
    AppAction next(u32, OsRuntime&, u32) override {
      if (count_ >= 200) return sys(abi::kSysExit);
      if (in_fork_) {
        in_fork_ = false;
        return sys(abi::kSysWait4, 0xFFFFFFFF);
      }
      in_fork_ = true;
      ++count_;
      return sys(abi::kSysFork);
    }
   private:
    int count_ = 0;
    bool in_fork_ = false;
  };
  u32 pid = sys_.os().spawn("storm", std::make_shared<Storm>());
  hv::RunOutcome outcome = sys_.run_until_exit(pid, 3'000'000'000ull);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(pid));
  EXPECT_EQ(sys_.os().counters().forks, 200u);
}

// ---------------------------------------------------------------------------
// Signals and timers.
// ---------------------------------------------------------------------------

TEST_F(OsFixture, KillWithoutHandlerTerminatesTarget) {
  auto victim = std::make_shared<ScriptModel>(
      std::vector<AppAction>{sys(abi::kSysNanosleep, 1000)});
  u32 vpid = sys_.os().spawn("victim", victim);
  sys_.run_for(3'000'000);
  ASSERT_TRUE(sys_.os().task_alive(vpid));
  auto killer = run_script({sys(abi::kSysKill, vpid, 9)}, "killer");
  EXPECT_EQ(killer->results()[0], 0u);
  EXPECT_TRUE(sys_.os().task_zombie_or_dead(vpid));
}

TEST_F(OsFixture, AlarmDeliversSigalrmToHandler) {
  // The handler is real user code: it performs getpid then sigreturn.
  os::UserCodeBuilder handler(os::kUserInjectVa);
  handler.syscall(abi::kSysGetpid);
  handler.syscall(abi::kSysSigreturn);
  // Main program: register handler, arm alarm, sleep long.
  auto model = std::make_shared<ScriptModel>(std::vector<AppAction>{
      sys(abi::kSysSigaction, 14, os::kUserInjectVa),
      sys(abi::kSysAlarm, 3),
      sys(abi::kSysNanosleep, 50),
  });
  u32 pid = sys_.os().spawn("alarmer", model);
  sys_.os().inject_code(pid, handler.finish());
  u64 syscalls_before = sys_.os().counters().syscalls;
  sys_.run_until_exit(pid, 600'000'000);
  // The sleep was interrupted (EINTR) by SIGALRM and the handler ran
  // (getpid + sigreturn add syscalls beyond the script's own three).
  ASSERT_GE(model->results().size(), 3u);
  EXPECT_EQ(model->results()[2], 0xFFFFFFFCu);  // -EINTR
  EXPECT_GE(sys_.os().counters().syscalls - syscalls_before, 5u);
}

// ---------------------------------------------------------------------------
// Kernel modules.
// ---------------------------------------------------------------------------

TEST_F(OsFixture, BootLoadsE1000AndItIsVisible) {
  auto mods = sys_.hv().vmi().module_list();
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].name, "e1000");
  EXPECT_GT(mods[0].size, 0u);
  EXPECT_TRUE(sys_.os().loaded_module("e1000").has_value());
}

TEST_F(OsFixture, GuestInsmodLoadsAndRunsInit) {
  os::Blueprint bp;
  bp.add("testmod_fn", "test", [](os::EmitCtx& c) { c.pad(20); });
  bp.add("testmod_init", "test", [](os::EmitCtx& c) {
    // Init writes a marker into the syscall table's last-but-one slot.
    auto& a = c.a();
    a.mov_imm(isa::Reg::A, 0x12345678);
    a.store_abs(abi::kSyscallTableAddr + (abi::kSyscallTableSlots - 2) * 4);
  });
  u32 id = sys_.os().register_module(
      {"testmod", std::move(bp), "testmod_init", true, nullptr});
  run_script({sys(abi::kSysInitModule, id)}, "insmod");

  auto mods = sys_.hv().vmi().module_list();
  ASSERT_EQ(mods.size(), 2u);
  EXPECT_EQ(mods[0].name, "testmod");  // newest first
  EXPECT_EQ(sys_.hv().vmi().read_u32(
                abi::kSyscallTableAddr + (abi::kSyscallTableSlots - 2) * 4),
            0x12345678u);
}

TEST_F(OsFixture, HiddenModuleDisappearsFromGuestListButNotHostTruth) {
  os::Blueprint bp;
  bp.add("hider_init", "test", [](os::EmitCtx& c) {
    auto& a = c.a();
    a.mov_imm_sym(isa::Reg::B, "hider_init");
    c.ksvc(abi::kKsvcModuleHide);
  });
  u32 id = sys_.os().register_module(
      {"hider", std::move(bp), "hider_init", false, nullptr});
  run_script({sys(abi::kSysInitModule, id)}, "insmod");

  for (const auto& mod : sys_.hv().vmi().module_list())
    EXPECT_NE(mod.name, "hider");
  EXPECT_TRUE(sys_.os().loaded_module("hider").has_value());
  // VMI symbolization of an address inside the hidden module → UNKNOWN.
  GVirt inside = sys_.os().loaded_module("hider")->base + 4;
  EXPECT_EQ(sys_.hv().vmi().symbolize(inside), "UNKNOWN");
}

TEST_F(OsFixture, DeleteModuleUnlinksIt) {
  os::Blueprint bp;
  bp.add("gone_fn", "test", [](os::EmitCtx& c) { c.pad(10); });
  u32 id = sys_.os().register_module({"gone", std::move(bp), "", true,
                                      nullptr});
  run_script({sys(abi::kSysInitModule, id),
              sys(abi::kSysDeleteModule, id)},
             "insmod");
  for (const auto& mod : sys_.hv().vmi().module_list())
    EXPECT_NE(mod.name, "gone");
  EXPECT_FALSE(sys_.os().loaded_module("gone").has_value());
}

// ---------------------------------------------------------------------------
// VMI coherence.
// ---------------------------------------------------------------------------

TEST_F(OsFixture, VmiSeesCurrentTaskAndStates) {
  auto model = std::make_shared<ScriptModel>(
      std::vector<AppAction>{sys(abi::kSysNanosleep, 400)});
  u32 pid = sys_.os().spawn("sleeper", model);
  sys_.run_for(2'000'000);
  // The sleeper is blocked; current should be the idle task (swapper).
  hv::TaskInfo current = sys_.hv().vmi().current_task();
  EXPECT_EQ(current.comm, "swapper");
  // The sleeper's guest task struct mirrors its state.
  bool found = false;
  for (u32 slot = 0; slot < abi::Task::kMaxTasks; ++slot) {
    hv::TaskInfo info = sys_.hv().vmi().task_at(abi::Task::addr(slot));
    if (info.comm == "sleeper") {
      found = true;
      EXPECT_EQ(info.pid, pid);
      EXPECT_EQ(info.state, abi::TaskState::kBlocked);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(OsFixture, IrqCountStaysBalanced) {
  // irq_count must never exceed nesting depth 1 (no nested IRQs) and must
  // return to 0 whenever execution is outside a handler. With a busy user
  // process, most samples land outside interrupt context.
  auto model = std::make_shared<ScriptModel>(std::vector<AppAction>(
      400, AppAction::compute_only(20'000)));
  sys_.os().spawn("busy", model);
  u32 max_count = 0;
  u32 zero_samples = 0;
  for (int i = 0; i < 20; ++i) {
    sys_.run_for(300'000);
    u32 count = sys_.hv().vmi().read_u32(abi::kIrqCountAddr);
    max_count = std::max(max_count, count);
    if (count == 0) ++zero_samples;
  }
  EXPECT_LE(max_count, 1u);
  EXPECT_GT(zero_samples, 0u);
}

}  // namespace
}  // namespace fc
