// Temporary probe used during bring-up (kept as a fast sanity suite).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/similarity.hpp"
#include "harness/harness.hpp"

namespace fc {
namespace {

TEST(Probe, SimilarityMatrixShape) {
  auto& configs = harness::profile_all_apps(12);
  core::SimilarityMatrix m = core::compute_similarity(configs);
  std::printf("%s\n", m.render().c_str());
  std::printf("min=%.1f%% max=%.1f%%\n", m.min_similarity() * 100,
              m.max_similarity() * 100);
  EXPECT_LT(m.min_similarity(), 0.55);
  EXPECT_GT(m.max_similarity(), 0.75);
}

TEST(Probe, InjectsoDetected) {
  auto attack = attacks::make_attack("Injectso");
  harness::AttackRunResult r = harness::run_attack(*attack);
  for (const auto& ev : r.rendered_events) std::printf("%s\n", ev.c_str());
  EXPECT_TRUE(r.detected);
}

TEST(Probe, KBeastDetected) {
  auto attack = attacks::make_attack("KBeast");
  harness::AttackRunResult r = harness::run_attack(*attack);
  for (const auto& ev : r.rendered_events) std::printf("%s\n", ev.c_str());
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.backtrace_has_unknown);
}

}  // namespace
}  // namespace fc
