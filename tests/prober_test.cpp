// Boundary-probe planner + trap classifier tests (src/analysis/prober):
// entry-reachable span construction (including dispatch handlers crossing
// page boundaries), probe planning over a synthetic view boundary, the
// fatal-syscall skip list, and the punched-profile-gap classification the
// probe gate relies on.
#include <gtest/gtest.h>

#include "analysis/closure.hpp"
#include "analysis/prober.hpp"
#include "harness/harness.hpp"
#include "hv/guest_abi.hpp"

namespace fc {
namespace {

struct ProberFixture {
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  std::vector<GVirt> table = read_table(sys);

  static std::vector<GVirt> read_table(harness::GuestSystem& sys) {
    std::vector<GVirt> t;
    for (u32 i = 0; i < abi::kSyscallTableSlots; ++i)
      t.push_back(sys.hv().vmi().read_u32(abi::kSyscallTableAddr + i * 4));
    return t;
  }
};

ProberFixture& fixture() {
  static ProberFixture* f = new ProberFixture();
  return *f;
}

TEST(EntryReachable, CoversDispatchHandlersWholeSpanAcrossPages) {
  const analysis::CallGraph& graph = fixture().graph;
  core::RangeList spans = analysis::entry_reachable_spans(graph);
  ASSERT_FALSE(spans.empty());

  // Every dispatch-table handler is an entry root: first AND last byte must
  // be in the span set, even when the function crosses a page boundary
  // (the 4 KiB granularity of the view machinery must not truncate the
  // reachability predicate).
  std::size_t page_crossing = 0;
  for (u32 i : graph.dispatch_target_indices()) {
    const analysis::FuncNode& f = graph.functions()[i];
    EXPECT_TRUE(spans.contains(f.start)) << f.name;
    EXPECT_TRUE(spans.contains(f.end - 1)) << f.name;
  }
  // And the same both-ends property for every page-crossing function the
  // entry set reaches transitively.
  for (const analysis::FuncNode& f : graph.functions()) {
    if (!spans.contains(f.start)) continue;
    EXPECT_TRUE(spans.contains(f.end - 1)) << f.name;
    if (f.start / kPageSize != (f.end - 1) / kPageSize) ++page_crossing;
  }
  EXPECT_GT(page_crossing, 0u)
      << "the kernel image must exercise the page-boundary case";
}

TEST(ProbePlan, CoversSyntheticViewBoundaryEdges) {
  const analysis::CallGraph& graph = fixture().graph;
  // Synthetic one-function view: only sys_read is loaded, so every direct
  // callee of sys_read is a boundary edge and the read probe must cover
  // them all.
  int sys_read = graph.index_of("", "sys_read");
  ASSERT_GE(sys_read, 0);
  const analysis::FuncNode& f = graph.functions()[sys_read];
  core::RangeList view;
  view.insert(f.start, f.end);

  analysis::ProbePlan plan =
      analysis::plan_boundary_probe(graph, view, fixture().table);
  EXPECT_GT(plan.boundary_edges, 0u);
  EXPECT_EQ(plan.covered_edges, plan.boundary_edges)
      << "every edge out of sys_read is reachable from the read handler";
  bool has_read_probe = false;
  for (const analysis::ProbeCall& call : plan.calls) {
    if (call.nr == abi::kSysRead) {
      has_read_probe = true;
      EXPECT_TRUE(call.handler_in_view);
      EXPECT_GT(call.edges_reached, 0u);
    }
  }
  EXPECT_TRUE(has_read_probe);
  EXPECT_GT(plan.handlers_out_of_view, 0u);
  EXPECT_GT(plan.slots_skipped, 0u);
}

TEST(ProbePlan, SkipsProcessFatalSyscalls) {
  for (u32 nr : {abi::kSysExit, abi::kSysFork, abi::kSysClone,
                 abi::kSysExecve, abi::kSysWaitpid, abi::kSysWait4,
                 abi::kSysSigreturn, abi::kSysKill, abi::kSysInitModule,
                 abi::kSysDeleteModule}) {
    EXPECT_TRUE(analysis::probe_skips_syscall(nr)) << nr;
  }
  EXPECT_TRUE(analysis::probe_skips_syscall(abi::kSyscallTableSlots - 1))
      << "reserved module-init parking slot";
  for (u32 nr : {abi::kSysRead, abi::kSysOpen, abi::kSysSocket,
                 abi::kSysNanosleep}) {
    EXPECT_FALSE(analysis::probe_skips_syscall(nr)) << nr;
  }
}

TEST(TrapClassifier, PunchedProfileGapIsNotATrueHazard) {
  const analysis::CallGraph& graph = fixture().graph;
  core::StaticAudit audit;
  audit.entry_reachable = analysis::entry_reachable_spans(graph);

  // Fake a training gap: the view's closure covers every entry-reachable
  // function EXCEPT one dispatch handler (RangeList has no subtract, so
  // the punched set is rebuilt span by span).
  ASSERT_FALSE(graph.dispatch_target_indices().empty());
  const analysis::FuncNode& punched =
      graph.functions()[graph.dispatch_target_indices().front()];
  core::RangeList closure;
  for (const analysis::FuncNode& f : graph.functions()) {
    if (f.start == punched.start) continue;
    if (audit.entry_reachable.contains(f.start))
      closure.insert(f.start, f.end);
  }
  const u32 view_id = 7;
  audit.predicted[view_id] = closure;

  // A trap at the punched handler: outside the closure but reachable from
  // a clean entry point — a profile gap, NOT a cross-view hazard.
  EXPECT_EQ(analysis::classify_trap(audit, view_id, punched.start),
            analysis::TrapClass::kProfileGap);
  EXPECT_EQ(analysis::trap_class_name(analysis::TrapClass::kProfileGap),
            std::string("profile-gap"));

  // A trap inside the closure is the predicted-benign case.
  bool checked_predicted = false;
  for (const analysis::FuncNode& f : graph.functions()) {
    if (f.start != punched.start && closure.contains(f.start)) {
      EXPECT_EQ(analysis::classify_trap(audit, view_id, f.start),
                analysis::TrapClass::kClosurePredicted);
      checked_predicted = true;
      break;
    }
  }
  EXPECT_TRUE(checked_predicted);

  // An address no clean entry path reaches (a rootkit hook body would live
  // here): the true-hazard signal.
  const GVirt nowhere = 0x1000;  // user-space VA, never kernel code
  EXPECT_EQ(analysis::classify_trap(audit, view_id, nowhere),
            analysis::TrapClass::kTrueHazard);
}

TEST(TrapClassifier, EmptyEntrySetDegradesToTwoClassTaxonomy) {
  // Pre-prober audits carry no entry_reachable set; everything outside the
  // closure must then stay in the unexplained bucket (no silent widening).
  core::StaticAudit audit;
  core::RangeList closure;
  closure.insert(0xC0100000, 0xC0100040);
  audit.predicted[1] = closure;
  EXPECT_EQ(analysis::classify_trap(audit, 1, 0xC0100010),
            analysis::TrapClass::kClosurePredicted);
  EXPECT_EQ(analysis::classify_trap(audit, 1, 0xC0200000),
            analysis::TrapClass::kTrueHazard);
}

}  // namespace
}  // namespace fc
