// Profiling phase tests (§III-A): per-process context attribution,
// interrupt-context capture, module-relative recording, determinism, and
// the always-included entry code.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

TEST(Profiler, ProfilesOnlyTheTargetContext) {
  // Run top and gzip concurrently; profile only top. gzip-exclusive kernel
  // code (the ext4 *write* chain) must not leak into top's view.
  harness::GuestSystem sys;
  core::Profiler profiler(sys.hv(), sys.os().kernel());
  profiler.add_target("top");
  profiler.attach();

  apps::AppScenario top = apps::make_app("top", 10);
  apps::AppScenario gzip = apps::make_app("gzip", 10);
  u32 p1 = sys.os().spawn("top", top.model);
  u32 p2 = sys.os().spawn("gzip", gzip.model);
  top.install_environment(sys.os());
  gzip.install_environment(sys.os());
  sys.hv().run([&] {
    return sys.os().task_zombie_or_dead(p1) &&
           sys.os().task_zombie_or_dead(p2);
  });
  profiler.detach();

  core::KernelViewConfig cfg = profiler.export_config("top");
  const hv::SymbolTable& syms = sys.os().kernel().symbols;
  // top's own code paths are present…
  EXPECT_TRUE(cfg.base.contains(syms.must_addr("proc_reg_read")));
  EXPECT_TRUE(cfg.base.contains(syms.must_addr("tty_write")));
  EXPECT_TRUE(cfg.base.contains(syms.must_addr("sys_nanosleep")));
  // …gzip's write path is not (top only reads).
  EXPECT_FALSE(cfg.base.contains(syms.must_addr("ext4_file_write")));
  EXPECT_FALSE(cfg.base.contains(syms.must_addr("__jbd2_log_start_commit")));
}

TEST(Profiler, EntryAndSchedulerCodeAlwaysIncluded) {
  core::KernelViewConfig cfg = harness::profile_app("gzip", 4);
  harness::GuestSystem probe;  // identical layout
  const hv::SymbolTable& syms = probe.os().kernel().symbols;
  for (const char* name :
       {"syscall_call", "resume_userspace", "ret_from_intr", "ret_from_fork",
        "cpu_idle", "__switch_to", "schedule", "irq_entry_0"}) {
    EXPECT_TRUE(cfg.base.contains(syms.must_addr(name))) << name;
  }
}

TEST(Profiler, InterruptProfileIsMergedIntoEveryView) {
  // The timer interrupt chain must be present even in a profile of an app
  // that never calls time-related syscalls (gzip).
  core::KernelViewConfig cfg = harness::profile_app("gzip", 4);
  harness::GuestSystem probe;
  const hv::SymbolTable& syms = probe.os().kernel().symbols;
  EXPECT_TRUE(cfg.base.contains(syms.must_addr("timer_interrupt")));
  EXPECT_TRUE(cfg.base.contains(syms.must_addr("tick_periodic")));
  EXPECT_TRUE(cfg.base.contains(syms.must_addr("__do_softirq")));
}

TEST(Profiler, ModuleCodeIsRecordedModuleRelative) {
  // Any app that receives network traffic exercises the e1000 interrupt
  // handler; its blocks must be recorded relative to the module base.
  core::KernelViewConfig cfg = harness::profile_app("tcpdump", 10);
  ASSERT_EQ(cfg.modules.count("e1000"), 1u);
  const core::RangeList& ranges = cfg.modules.at("e1000");
  EXPECT_GT(ranges.size_bytes(), 0u);
  // Relative addresses are small (within the module), not kernel VAs.
  for (const auto& r : ranges.ranges()) {
    EXPECT_LT(r.end, 0x100000u);
  }
}

TEST(Profiler, DeterministicAcrossSessions) {
  core::KernelViewConfig a = harness::profile_app("top", 6);
  core::KernelViewConfig b = harness::profile_app("top", 6);
  EXPECT_TRUE(a.base == b.base);
  EXPECT_EQ(a.modules.size(), b.modules.size());
}

TEST(Profiler, LongerWorkloadsOnlyGrowTheView) {
  core::KernelViewConfig small = harness::profile_app("apache", 4);
  core::KernelViewConfig large = harness::profile_app("apache", 16);
  // Monotonicity: everything profiled in the short session appears in the
  // longer one.
  core::RangeList overlap = small.base.intersect(large.base);
  EXPECT_EQ(overlap.size_bytes(), small.base.size_bytes());
  EXPECT_GE(large.size_bytes(), small.size_bytes());
}

TEST(Profiler, ViewSizesAreInThePapersBallpark) {
  const auto& configs = harness::profile_all_apps();
  for (const auto& cfg : configs) {
    EXPECT_GT(cfg.size_bytes(), 60u << 10) << cfg.app_name;   // > 60 KB
    EXPECT_LT(cfg.size_bytes(), 500u << 10) << cfg.app_name;  // < 500 KB
  }
}

TEST(Profiler, RecordsBlocksAndDedupes) {
  harness::GuestSystem sys;
  core::Profiler profiler(sys.hv(), sys.os().kernel());
  profiler.add_target("top");
  profiler.attach();
  apps::AppScenario top = apps::make_app("top", 6);
  u32 pid = sys.os().spawn("top", top.model);
  sys.run_until_exit(pid, 600'000'000);
  u64 first_pass = profiler.blocks_recorded();
  EXPECT_GT(first_pass, 100u);

  // A second identical process adds almost nothing new.
  apps::AppScenario again = apps::make_app("top", 6);
  u32 pid2 = sys.os().spawn("top", again.model);
  sys.run_until_exit(pid2, 600'000'000);
  u64 second_pass = profiler.blocks_recorded() - first_pass;
  EXPECT_LT(second_pass, first_pass / 4);
}

}  // namespace
}  // namespace fc
