// Range-list algebra (the paper's K[app], ∩, LEN, SIZE, similarity index),
// including randomized property checks against a reference byte-set
// implementation.
#include <gtest/gtest.h>

#include <set>

#include "core/rangelist.hpp"
#include "core/viewconfig.hpp"
#include "support/rng.hpp"

namespace fc::core {
namespace {

TEST(RangeList, InsertAndSize) {
  RangeList list;
  list.insert(100, 200);
  EXPECT_EQ(list.len(), 1u);
  EXPECT_EQ(list.size_bytes(), 100u);
}

TEST(RangeList, MergesOverlapping) {
  RangeList list;
  list.insert(100, 200);
  list.insert(150, 250);
  EXPECT_EQ(list.len(), 1u);
  EXPECT_EQ(list.size_bytes(), 150u);
}

TEST(RangeList, MergesAdjacent) {
  RangeList list;
  list.insert(100, 200);
  list.insert(200, 300);
  EXPECT_EQ(list.len(), 1u);
  EXPECT_EQ(list.size_bytes(), 200u);
}

TEST(RangeList, KeepsDisjointSeparate) {
  RangeList list;
  list.insert(100, 200);
  list.insert(300, 400);
  EXPECT_EQ(list.len(), 2u);
  EXPECT_EQ(list.size_bytes(), 200u);
}

TEST(RangeList, InsertBridgesMultipleRanges) {
  RangeList list;
  list.insert(100, 200);
  list.insert(300, 400);
  list.insert(500, 600);
  list.insert(150, 550);  // swallows everything
  EXPECT_EQ(list.len(), 1u);
  EXPECT_EQ(list.size_bytes(), 500u);
}

TEST(RangeList, Contains) {
  RangeList list;
  list.insert(100, 200);
  EXPECT_TRUE(list.contains(100));
  EXPECT_TRUE(list.contains(199));
  EXPECT_FALSE(list.contains(200));  // end-exclusive
  EXPECT_FALSE(list.contains(99));
}

TEST(RangeList, Covers) {
  RangeList list;
  list.insert(100, 200);
  list.insert(200, 300);  // merged
  EXPECT_TRUE(list.covers(120, 280));
  EXPECT_FALSE(list.covers(120, 320));
  EXPECT_FALSE(list.covers(50, 120));
}

TEST(RangeList, IntersectBasic) {
  RangeList a, b;
  a.insert(100, 300);
  b.insert(200, 400);
  RangeList c = a.intersect(b);
  EXPECT_EQ(c.len(), 1u);
  EXPECT_TRUE(c.contains(200));
  EXPECT_TRUE(c.contains(299));
  EXPECT_FALSE(c.contains(300));
  EXPECT_EQ(c.size_bytes(), 100u);
}

TEST(RangeList, IntersectDisjointIsEmpty) {
  RangeList a, b;
  a.insert(0, 100);
  b.insert(100, 200);
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(RangeList, EqualityIgnoresInsertOrder) {
  RangeList a, b;
  a.insert(10, 20);
  a.insert(30, 40);
  b.insert(30, 40);
  b.insert(10, 20);
  EXPECT_TRUE(a == b);
}

// --------------------------------------------------------------------------
// Property tests against a reference byte-set model.
// --------------------------------------------------------------------------

class RangeListProperty : public ::testing::TestWithParam<u64> {};

TEST_P(RangeListProperty, MatchesReferenceSetModel) {
  Rng rng(GetParam());
  RangeList list;
  std::set<u32> reference;
  for (int i = 0; i < 200; ++i) {
    u32 begin = rng.below(4000);
    u32 end = begin + rng.between(1, 64);
    list.insert(begin, end);
    for (u32 x = begin; x < end; ++x) reference.insert(x);
  }
  EXPECT_EQ(list.size_bytes(), reference.size());
  // Range count = number of gaps + 1.
  std::size_t segments = 0;
  u32 prev = 0;
  bool first = true;
  for (u32 x : reference) {
    if (first || x != prev + 1) ++segments;
    prev = x;
    first = false;
  }
  EXPECT_EQ(list.len(), segments);
  for (int probe = 0; probe < 300; ++probe) {
    u32 x = rng.below(4200);
    EXPECT_EQ(list.contains(x), reference.count(x) == 1) << x;
  }
}

TEST_P(RangeListProperty, IntersectionIsCommutativeAndBounded) {
  Rng rng(GetParam() ^ 0x1234);
  RangeList a, b;
  for (int i = 0; i < 60; ++i) {
    u32 begin_a = rng.below(4000);
    a.insert(begin_a, begin_a + rng.between(1, 128));
    u32 begin_b = rng.below(4000);
    b.insert(begin_b, begin_b + rng.between(1, 128));
  }
  RangeList ab = a.intersect(b);
  RangeList ba = b.intersect(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_LE(ab.size_bytes(), std::min(a.size_bytes(), b.size_bytes()));
  // Idempotence: (a ∩ b) ∩ b == a ∩ b.
  EXPECT_TRUE(ab.intersect(b) == ab);
  // Self-intersection is identity.
  EXPECT_TRUE(a.intersect(a) == a);
}

TEST_P(RangeListProperty, SimilarityAxioms) {
  Rng rng(GetParam() ^ 0x9876);
  KernelViewConfig a, b;
  a.app_name = "a";
  b.app_name = "b";
  for (int i = 0; i < 40; ++i) {
    u32 begin_a = rng.below(100000);
    a.base.insert(begin_a, begin_a + rng.between(16, 512));
    u32 begin_b = rng.below(100000);
    b.base.insert(begin_b, begin_b + rng.between(16, 512));
  }
  double s_ab = KernelViewConfig::similarity(a, b);
  double s_ba = KernelViewConfig::similarity(b, a);
  EXPECT_DOUBLE_EQ(s_ab, s_ba);                          // symmetric
  EXPECT_GE(s_ab, 0.0);
  EXPECT_LE(s_ab, 1.0);                                  // bounded
  EXPECT_DOUBLE_EQ(KernelViewConfig::similarity(a, a), 1.0);  // reflexive
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeListProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace fc::core
