// Kernel code recovery tests (§III-B3): UD2 trap handling, whole-function
// recovery, provenance backtraces, lazy vs instant recovery (Figure 3), and
// benign interrupt-context classification (the kvm-clock case).
#include <gtest/gtest.h>

#include "analysis/callgraph.hpp"
#include "harness/harness.hpp"

namespace fc {
namespace {

namespace abi = fc::abi;
using os::AppAction;

/// Minimal model: open+read a proc file, then exit (used under a view that
/// deliberately lacks the procfs chain).
class ProcReader : public os::AppModel {
 public:
  AppAction next(u32 last, os::OsRuntime&, u32) override {
    switch (phase_++) {
      case 0: return AppAction::syscall(abi::kSysOpen, os::kPathProcStat, 0);
      case 1: fd_ = last; return AppAction::syscall(abi::kSysRead, fd_, 1024);
      default: return AppAction::syscall(abi::kSysExit);
    }
  }
 private:
  int phase_ = 0;
  u32 fd_ = 0;
};

TEST(Recovery, MissingCodeIsRecoveredAndExecutionContinues) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  // Bind the proc-reading process to gzip's view (no procfs chain).
  core::KernelViewConfig cfg = harness::profile_of("gzip");
  cfg.app_name = "procreader";
  u32 view = engine.load_view(cfg);
  engine.bind("procreader", view);

  u32 pid = sys.os().spawn("procreader", std::make_shared<ProcReader>());
  hv::RunOutcome outcome = sys.run_until_exit(pid, 300'000'000);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));  // robustness: survived

  const core::RecoveryLog& log = engine.recovery_log();
  EXPECT_GT(log.size(), 0u);
  EXPECT_TRUE(log.recovered_function("proc_reg_read") ||
              log.recovered_function("proc_file_read") ||
              log.recovered_function("proc_lookup"));
  // The view grew: recovered code is now loaded.
  GVirt addr = sys.os().kernel().symbols.must_addr("proc_reg_read");
  EXPECT_TRUE(engine.view(view)->loaded.contains(addr));
}

TEST(Recovery, WholeFunctionIsRecoveredPerTrap) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  core::KernelViewConfig cfg = harness::profile_of("gzip");
  cfg.app_name = "procreader";
  u32 view = engine.load_view(cfg);
  engine.bind("procreader", view);
  u32 pid = sys.os().spawn("procreader", std::make_shared<ProcReader>());
  sys.run_until_exit(pid, 300'000'000);

  for (const core::RecoveryEvent& ev : engine.recovery_log().events()) {
    // Every recovery spans a whole aligned function, not a fragment.
    EXPECT_EQ(ev.recovered_start % 16, 0u);
    EXPECT_GT(ev.recovered_end, ev.recovered_start);
    EXPECT_TRUE(
        engine.view(view)->loaded.covers(ev.recovered_start, ev.recovered_end));
  }
}

TEST(Recovery, BacktraceWalksTheFramePointerChain) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  core::KernelViewConfig cfg = harness::profile_of("gzip");
  cfg.app_name = "procreader";
  engine.bind("procreader", engine.load_view(cfg));
  u32 pid = sys.os().spawn("procreader", std::make_shared<ProcReader>());
  sys.run_until_exit(pid, 300'000'000);

  // Find a recovery with a backtrace; its innermost frames should lead back
  // to syscall_call.
  bool saw_syscall_entry = false;
  for (const core::RecoveryEvent& ev : engine.recovery_log().events()) {
    EXPECT_EQ(ev.process_comm, "procreader");
    for (const core::BacktraceFrame& frame : ev.backtrace) {
      if (frame.symbol.rfind("syscall_call", 0) == 0) saw_syscall_entry = true;
    }
  }
  EXPECT_TRUE(saw_syscall_entry);
}

TEST(Recovery, RenderingMatchesThePapersLogStyle) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  core::KernelViewConfig cfg = harness::profile_of("gzip");
  cfg.app_name = "procreader";
  engine.bind("procreader", engine.load_view(cfg));
  u32 pid = sys.os().spawn("procreader", std::make_shared<ProcReader>());
  sys.run_until_exit(pid, 300'000'000);

  ASSERT_GT(engine.recovery_log().size(), 0u);
  const core::RecoveryEvent& ev = engine.recovery_log().events().front();
  std::string line = ev.headline();
  EXPECT_NE(line.find("Recover 0x"), std::string::npos);
  EXPECT_NE(line.find("for kernel[procreader]"), std::string::npos);
  std::string rendered = ev.render();
  if (!ev.backtrace.empty()) {
    EXPECT_NE(rendered.find("|-- Backtrace: 0x"), std::string::npos);
  }
}

TEST(Recovery, KvmClockMismatchIsBenignInterruptContext) {
  // Profile under tsc (QEMU), run under kvm-clock (KVM): §III-B3(i)'s
  // canonical benign recovery, classified via the guest's interrupt
  // context.
  // A CPU-bound process spends nearly all wall time under its own view, so
  // timer interrupts reliably fire while the (kvm-clock-less) view is
  // active.
  class Cruncher : public os::AppModel {
   public:
    explicit Cruncher(u32 steps) : steps_(steps) {}
    AppAction next(u32, os::OsRuntime&, u32) override {
      if (done_++ < steps_) return AppAction::compute_only(50'000);
      return AppAction::syscall(abi::kSysExit);
    }
   private:
    u32 steps_, done_ = 0;
  };

  core::KernelViewConfig cfg = [] {
    harness::GuestSystem profile_sys;  // clocksource = tsc ("QEMU")
    core::Profiler profiler(profile_sys.hv(), profile_sys.os().kernel());
    profiler.add_target("cruncher");
    profiler.attach();
    u32 pid = profile_sys.os().spawn("cruncher",
                                     std::make_shared<Cruncher>(60));
    profile_sys.run_until_exit(pid, 300'000'000);
    return profiler.export_config("cruncher");
  }();

  os::OsConfig runtime_cfg;
  runtime_cfg.clocksource = 1;  // "KVM"
  harness::GuestSystem sys(runtime_cfg);
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("cruncher", engine.load_view(cfg));
  u32 pid = sys.os().spawn("cruncher", std::make_shared<Cruncher>(300));
  sys.run_until_exit(pid, 600'000'000);

  const core::RecoveryLog& log = engine.recovery_log();
  ASSERT_TRUE(log.recovered_function("kvm_clock_get_cycles") ||
              log.recovered_function("kvm_clock_read"))
      << "the kvm-clock chain should have been recovered";
  // The chain is reached from the timer interrupt: at least one of those
  // recoveries happened in interrupt context (the benign classification).
  EXPECT_GT(log.benign_interrupt_count(), 0u);
  // The paper's chronological chain for this case.
  std::vector<std::string> want = {"kvm_clock_get_cycles", "kvm_clock_read",
                                   "pvclock_clocksource_read"};
  std::size_t idx = 0;
  for (const core::RecoveryEvent& ev : log.events()) {
    if (idx < want.size() && ev.symbol.rfind(want[idx], 0) == 0) ++idx;
  }
  EXPECT_EQ(idx, want.size()) << "chain recovered out of order";
}

TEST(Recovery, InstantRecoveryOnOddReturnAddresses) {
  // The Figure 3 scenario: a process blocks inside pipe_poll under the full
  // view; a view missing the poll chain is then enabled for it; a forked
  // child writes into the pipe to wake it. Resumption traps lazily at the
  // blocked function, and the backtrace walk finds sys_poll's ODD return
  // address reading 0B 0F — which is recovered instantly.
  class Poller : public os::AppModel {
   public:
    AppAction next(u32 last, os::OsRuntime&, u32) override {
      switch (phase_++) {
        case 0: return AppAction::syscall(abi::kSysPipe);
        case 1:
          rfd_ = last & 0xFFFF;
          wfd_ = last >> 16;
          return AppAction::syscall(abi::kSysFork);
        case 2: return AppAction::syscall(abi::kSysPoll, rfd_, 1);
        case 3: return AppAction::syscall(abi::kSysRead, rfd_, 64);
        default: return AppAction::syscall(abi::kSysExit);
      }
    }
    std::shared_ptr<os::AppModel> fork_child() override {
      return child_factory_ ? child_factory_(wfd_) : nullptr;
    }
    std::function<std::shared_ptr<os::AppModel>(u32)> child_factory_;
    u32 wfd_ = 0;
   private:
    int phase_ = 0;
    u32 rfd_ = 0;
  };
  class Writer : public os::AppModel {
   public:
    explicit Writer(u32 wfd) : wfd_(wfd) {}
    AppAction next(u32, os::OsRuntime&, u32) override {
      switch (phase_++) {
        case 0: return AppAction::syscall(abi::kSysNanosleep, 20);
        case 1: return AppAction::syscall(abi::kSysWrite, wfd_, 64);
        default: return AppAction::syscall(abi::kSysExit);
      }
    }
   private:
    u32 wfd_;
    int phase_ = 0;
  };

  harness::GuestSystem sys;
  // Disable the proactive switch-time scan so the trap-time mechanism (the
  // paper's actual Figure 3 fix) is what must save the day here; the scan
  // itself is exercised by Recovery.CrossViewScanStatsAreAccounted and the
  // multi-app stress tests.
  core::EngineOptions options;
  options.cross_view_scan = false;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel(), options);
  core::KernelViewConfig cfg = harness::profile_of("gzip");
  cfg.app_name = "poller";

  auto model = std::make_shared<Poller>();
  model->child_factory_ = [](u32 wfd) {
    return std::make_shared<Writer>(wfd);
  };
  u32 pid = sys.os().spawn("poller", model);
  sys.run_for(3'000'000);  // parent now blocked inside pipe_poll (full view)

  engine.enable();
  engine.bind("poller", engine.load_view(cfg));
  sys.run_until_exit(pid, 400'000'000);

  const core::RecoveryLog& log = engine.recovery_log();
  EXPECT_TRUE(log.recovered_function("pipe_poll"));
  EXPECT_GT(engine.recovery_stats().recoveries, 0u);
  EXPECT_GT(engine.recovery_stats().instant_recoveries, 0u)
      << "sys_poll's odd return address must have triggered instant recovery";
  // At least one backtrace frame shows the 0B 0F pair.
  bool saw_instant_frame = false;
  for (const core::RecoveryEvent& ev : log.events())
    for (const core::BacktraceFrame& frame : ev.backtrace)
      if (frame.instant_recovered) saw_instant_frame = true;
  EXPECT_TRUE(saw_instant_frame);
}

TEST(Recovery, PrologueSearchWalksBackAcrossPageBoundaries) {
  // §III-B1's hard case: the trap lands on the *second* page of a function
  // whose span crosses a 4 KiB boundary, so the prologue search must walk
  // back into the preceding page. The static analyzer's page-crossing list
  // drives the cases — every one of them, not a hand-picked sample.
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());

  core::KernelViewConfig empty;
  empty.app_name = "pagecross";  // loads nothing: every function traps
  u32 id = engine.load_view(empty);
  engine.force_activate(id);
  sys.vcpu().regs()[isa::Reg::FP] = 0;  // terminate the backtrace walk

  std::size_t tested = 0;
  for (const analysis::FuncNode* f : graph.page_crossing_functions()) {
    if (!f->unit.empty() || !f->has_frame) continue;
    // First address on the page after the one holding the prologue.
    GVirt pc = ((f->start >> kPageShift) + 1) << kPageShift;
    ASSERT_LT(pc, f->end) << f->name;
    ASSERT_TRUE(engine.handle_invalid_opcode(pc)) << f->name;
    const core::RecoveryEvent& ev = engine.recovery_log().events().back();
    EXPECT_EQ(ev.recovered_start, f->start)
        << f->name << ": prologue search stopped short of the boundary";
    EXPECT_GT(ev.recovered_end, pc) << f->name;
    // Both sides of the boundary are loaded now.
    EXPECT_TRUE(engine.view(id)->loaded.contains(f->start)) << f->name;
    EXPECT_TRUE(engine.view(id)->loaded.contains(pc)) << f->name;
    ++tested;
  }
  EXPECT_GT(tested, 50u) << "the kernel image should be full of "
                            "page-crossing functions";
}

}  // namespace
}  // namespace fc
