// End-to-end smoke tests: boot the guest, run applications to completion,
// profile them, enforce views. If these pass, the substrate works.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

TEST(Smoke, BootsAndIdles) {
  harness::GuestSystem sys;
  hv::RunOutcome outcome = sys.run_for(5'000'000);
  EXPECT_EQ(outcome, hv::RunOutcome::kStopped);
  // The timer must have been ticking.
  EXPECT_GT(sys.os().jiffies(), 5u);
}

TEST(Smoke, RunsOneProcessToExit) {
  harness::GuestSystem sys;
  apps::AppScenario scenario = apps::make_app("gzip", 5);
  u32 pid = sys.os().spawn("gzip", scenario.model);
  scenario.install_environment(sys.os());
  hv::RunOutcome outcome = sys.run_until_exit(pid, 500'000'000);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
  EXPECT_GT(sys.os().counters().syscalls, 10u);
  EXPECT_GT(sys.os().counters().fs_bytes_read, 0u);
}

TEST(Smoke, RunsEveryApplicationToExit) {
  for (const std::string& app : apps::all_app_names()) {
    SCOPED_TRACE(app);
    harness::GuestSystem sys;
    apps::AppScenario scenario = apps::make_app(app, 4);
    u32 pid = sys.os().spawn(app, scenario.model);
    scenario.install_environment(sys.os());
    hv::RunOutcome outcome = sys.run_until_exit(pid, 800'000'000);
    EXPECT_NE(outcome, hv::RunOutcome::kGuestFault) << app;
    EXPECT_TRUE(sys.os().task_zombie_or_dead(pid)) << app;
  }
}

TEST(Smoke, ProfilesAnApplication) {
  core::KernelViewConfig cfg = harness::profile_app("top", 5);
  EXPECT_EQ(cfg.app_name, "top");
  EXPECT_GT(cfg.size_bytes(), 10'000u);
  EXPECT_GT(cfg.base.len(), 5u);
}

TEST(Smoke, EnforcesAViewWithoutBehaviourChange) {
  core::KernelViewConfig cfg = harness::profile_app("top", 8);

  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  u32 view = engine.load_view(cfg);
  engine.bind("top", view);

  apps::AppScenario scenario = apps::make_app("top", 8);
  u32 pid = sys.os().spawn("top", scenario.model);
  scenario.install_environment(sys.os());
  hv::RunOutcome outcome = sys.run_until_exit(pid, 800'000'000);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
  EXPECT_GT(engine.stats().view_switches(), 0u);
}

}  // namespace
}  // namespace fc
