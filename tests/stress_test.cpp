// Stress and churn: long-running enforcement with repeated hot view
// swapping, all twelve applications concurrently under their own views,
// engine enable/disable cycling, and randomized config serialization
// round-trips.
#include <gtest/gtest.h>

#include "core/similarity.hpp"
#include "harness/harness.hpp"
#include "hv/guest_abi.hpp"

namespace fc {
namespace {

// All guest-physical code a kernel view can redirect (base kernel text plus
// listed module pages), read through the currently active EPT mappings.
std::vector<u8> visible_code(harness::GuestSystem& sys) {
  mem::Machine& machine = sys.hv().machine();
  std::vector<u8> out(mem::GuestLayout::kKernelCodeMax);
  machine.pread_bytes(mem::GuestLayout::kKernelCodePhys, out);
  for (const hv::ModuleInfo& mod : sys.hv().vmi().module_list()) {
    GPhys lo = mem::GuestLayout::kernel_pa(mod.base) &
               ~static_cast<GPhys>(kPageMask);
    GPhys hi = (mem::GuestLayout::kernel_pa(mod.base) + mod.size + kPageMask) &
               ~static_cast<GPhys>(kPageMask);
    std::vector<u8> pages(hi - lo);
    machine.pread_bytes(lo, pages);
    out.insert(out.end(), pages.begin(), pages.end());
  }
  return out;
}

TEST(Stress, AllTwelveAppsConcurrentlyUnderTheirOwnViews) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  for (const core::KernelViewConfig& cfg : harness::profile_all_apps())
    engine.bind(cfg.app_name, engine.load_view(cfg));

  std::vector<u32> pids;
  for (const std::string& app : apps::all_app_names()) {
    apps::AppScenario scenario = apps::make_app(app, 4);
    pids.push_back(sys.os().spawn(app, scenario.model));
    scenario.install_environment(sys.os());
  }
  hv::RunOutcome outcome = sys.hv().run([&] {
    for (u32 pid : pids)
      if (!sys.os().task_zombie_or_dead(pid)) return false;
    return true;
  });
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  for (u32 pid : pids) EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
  // Twelve different views were actually switched between.
  EXPECT_GT(engine.stats().view_switches(), 24u);
}

TEST(Stress, RepeatedLoadUnloadChurn) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  const core::KernelViewConfig& cfg = harness::profile_of("top");

  apps::AppScenario top = apps::make_app("top", 200);
  u32 pid = sys.os().spawn("top", top.model);
  top.install_environment(sys.os());

  for (int round = 0; round < 25 && sys.os().task_alive(pid); ++round) {
    u32 view = engine.load_view(cfg);
    engine.bind("top", view);
    sys.run_for(2'000'000);
    engine.unload_view(view);  // hot unplug, possibly while active
    sys.run_for(500'000);
  }
  EXPECT_EQ(engine.view_count(), 0u);
  // The app survived 25 plug/unplug cycles.
  hv::RunOutcome outcome = sys.run_until_exit(pid, 2'000'000'000ull);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
}

TEST(Stress, EnableDisableCycling) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  u32 view = 0;
  apps::AppScenario gzip = apps::make_app("gzip", 60);
  u32 pid = sys.os().spawn("gzip", gzip.model);
  for (int round = 0; round < 10 && sys.os().task_alive(pid); ++round) {
    engine.enable();
    if (round == 0) {
      view = engine.load_view(harness::profile_of("gzip"));
      engine.bind("gzip", view);
    }
    sys.run_for(2'000'000);
    engine.disable();
    sys.run_for(1'000'000);
  }
  hv::RunOutcome outcome = sys.run_until_exit(pid, 1'000'000'000ull);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
}

TEST(Stress, LongRunUnderEnforcementStaysHealthy) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.bind("apache", engine.load_view(harness::profile_of("apache")));
  apps::AppScenario apache = apps::make_app("apache", 150);
  u32 pid = sys.os().spawn("apache", apache.model);
  apache.install_environment(sys.os());
  hv::RunOutcome outcome = sys.run_until_exit(pid, 3'000'000'000ull);
  EXPECT_NE(outcome, hv::RunOutcome::kGuestFault);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
  EXPECT_EQ(sys.os().counters().responses_completed, 150u);
  // Steady state: the view stopped growing (no recovery churn).
  EXPECT_LT(engine.recovery_stats().recoveries, 30u);
}

TEST(Stress, HotUnloadActiveViewWithArmedResumeTrap) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  const os::KernelImage& kernel = sys.os().kernel();
  engine.enable();
  u32 view = engine.load_view(harness::profile_of("top"));
  engine.bind("top", view);
  apps::AppScenario top = apps::make_app("top", 4);
  u32 pid = sys.os().spawn("top", top.model);

  // Arm a deferred switch to the view (exactly as the context-switch trap
  // does), force the view active, then hot-unload it with the resume trap
  // still armed.
  sys.vcpu().regs()[isa::Reg::B] = abi::Task::addr(pid);
  engine.handle_breakpoint(kernel.symbols.must_addr("__switch_to"));
  engine.force_activate(view);
  engine.unload_view(view);
  EXPECT_EQ(engine.active_view_id(), core::kFullKernelViewId);

  // The stale resume trap fires next: it must not resurrect the unloaded id.
  engine.handle_breakpoint(kernel.symbols.must_addr("resume_userspace"));
  EXPECT_EQ(engine.active_view_id(), core::kFullKernelViewId);
  EXPECT_EQ(engine.view_count(), 0u);

  // And the guest still runs to completion under enforcement.
  top.install_environment(sys.os());
  EXPECT_NE(sys.run_until_exit(pid, 600'000'000),
            hv::RunOutcome::kGuestFault);
}

TEST(Stress, RandomizedViewPairsFastNaiveEquivalence) {
  harness::GuestSystem fast_sys;
  harness::GuestSystem naive_sys;
  core::EngineOptions naive_opts;
  naive_opts.delta_switch_fastpath = false;
  naive_opts.scoped_tlb_invalidation = false;
  core::FaceChangeEngine fast(fast_sys.hv(), fast_sys.os().kernel());
  core::FaceChangeEngine naive(naive_sys.hv(), naive_sys.os().kernel(),
                               naive_opts);
  fast.enable();
  naive.enable();

  Rng rng(20140623);
  std::vector<u32> ids{core::kFullKernelViewId};
  for (int v = 0; v < 4; ++v) {
    core::KernelViewConfig cfg;
    cfg.app_name = "rand" + std::to_string(v);
    for (int i = 0; i < 120; ++i) {
      u32 begin = 0xC0400000 + rng.below(1u << 21);
      cfg.base.insert(begin, begin + rng.between(2, 2048));
    }
    u32 f = fast.load_view(cfg);
    u32 n = naive.load_view(cfg);
    ASSERT_EQ(f, n);
    ids.push_back(f);
  }

  // Random walk over {full, v1..v4}: after every switch the fast path must
  // leave the EPT byte-identical to the naive full rewrite.
  for (int step = 0; step < 30; ++step) {
    u32 target = ids[rng.below(static_cast<u32>(ids.size()))];
    fast.force_activate(target);
    naive.force_activate(target);
    ASSERT_EQ(visible_code(fast_sys), visible_code(naive_sys))
        << "divergence at step " << step << " switching to " << target;
  }
  EXPECT_GT(fast.stats().fastpath_switches, 0u);
}

class ConfigRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(ConfigRoundTrip, RandomConfigsSurviveSerialization) {
  Rng rng(GetParam());
  core::KernelViewConfig cfg;
  cfg.app_name = "random";
  for (int i = 0; i < 200; ++i) {
    u32 begin = 0xC0400000 + rng.below(1u << 21);
    cfg.base.insert(begin, begin + rng.between(2, 4096));
  }
  for (int m = 0; m < 3; ++m) {
    std::string name = "mod" + std::to_string(m);
    for (int i = 0; i < 40; ++i) {
      u32 begin = rng.below(1u << 16);
      cfg.modules[name].insert(begin, begin + rng.between(2, 512));
    }
  }
  core::KernelViewConfig back = core::KernelViewConfig::parse(cfg.serialize());
  EXPECT_TRUE(cfg == back);
  // And the parsed copy builds into a working view.
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  u32 view = engine.load_view(back);
  engine.force_activate(view);
  engine.force_activate(core::kFullKernelViewId);
  engine.unload_view(view);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigRoundTrip,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace fc
