// Telemetry-plane tests: Histogram percentile extraction and merge edge
// cases, SampleProfile symbolization / merge / deterministic exports, the
// vCPU's cycle-driven sample trigger (fires on period boundaries, carries
// multi-period weights across time jumps, never perturbs the instruction
// stream), engine attachment (profile + time series off one trigger), the
// TimelineRollup's exact across-VM percentiles, and the fleet determinism
// contract for the merged telemetry outputs (byte-identical JSON at jobs
// 1/2/4 and across repeated runs).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "fleet/fleet.hpp"
#include "harness/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "vcpu/vcpu.hpp"

namespace fc {
namespace {

// ---------------------------------------------------------------------------
// Histogram percentiles (obs/metrics.hpp).
// ---------------------------------------------------------------------------

TEST(HistogramPercentile, EmptyHistogramReportsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(HistogramPercentile, SingleBucketClampsToObservedRange) {
  obs::Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100);
  // Every percentile of a single-valued distribution is that value: the
  // bucket upper bound (127) clamps to the recorded max.
  EXPECT_EQ(h.p50(), 100u);
  EXPECT_EQ(h.p90(), 100u);
  EXPECT_EQ(h.p99(), 100u);
  EXPECT_EQ(h.percentile(100), 100u);
}

TEST(HistogramPercentile, SpreadDistributionIsMonotone) {
  obs::Histogram h;
  for (u64 v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  // Nearest-rank p50 of 1..1000 is 500, reported as its bucket upper
  // bound (511); power-of-two buckets bound the error by 2x.
  EXPECT_GE(h.p50(), 500u);
  EXPECT_LE(h.p50(), 1000u);
  // p > 100 clamps rather than reading past the distribution.
  EXPECT_EQ(h.percentile(200), h.percentile(100));
}

TEST(HistogramPercentile, SaturatedTopBucketClampsToObservedRange) {
  obs::Histogram h;
  h.record(~0ull);  // both land in the saturated last bucket (48 buckets)
  h.record(~0ull - 1);
  // The bucket's nominal upper bound (2^47 - 1) undershoots the recorded
  // range, so the answer clamps to the observed min — never a garbage
  // power of two, and never an overflowed zero.
  EXPECT_EQ(h.p50(), ~0ull - 1);
  EXPECT_EQ(h.p99(), ~0ull - 1);
  EXPECT_GE(h.percentile(100), h.percentile(1));
}

TEST(HistogramPercentile, MergePreservesPercentiles) {
  obs::Histogram a, b;
  for (u64 v = 1; v <= 100; ++v) a.record(v);
  for (u64 v = 10'000; v <= 10'100; ++v) b.record(v);
  obs::Histogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count, a.count + b.count);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, 10'100u);
  // Half the mass sits at ~100, half at ~10k: p99 must land in b's range.
  EXPECT_GE(merged.p99(), 10'000u);
  // Merging an empty histogram is identity.
  obs::Histogram empty;
  obs::Histogram same = merged;
  same.merge(empty);
  EXPECT_EQ(same.p50(), merged.p50());
  EXPECT_EQ(same.count, merged.count);
}

// ---------------------------------------------------------------------------
// SampleProfile (obs/profiler.hpp).
// ---------------------------------------------------------------------------

TEST(SampleProfile, SymbolizesAgainstRegisteredRanges) {
  obs::SampleProfile p;
  p.set_period(1000);
  p.set_kernel_floor(0x1000);
  p.add_function("alpha", 0x1000, 0x100);
  p.add_function("beta", 0x1100, 0x100);
  p.record(0x1010, obs::kSampleTierInterp, 0, 1);
  p.record(0x10FF, obs::kSampleTierBlock, 0, 2);
  p.record(0x1100, obs::kSampleTierBlock, 1, 4);
  p.record(0x500, obs::kSampleTierInterp, 0, 1);   // below floor → [user]
  p.record(0x9000, obs::kSampleTierTrace, 0, 8);   // unclaimed → [unknown]
  EXPECT_EQ(p.total_weight(), 16u);

  std::vector<obs::SampleProfile::Bucket> buckets = p.buckets();
  ASSERT_EQ(buckets.size(), 5u);
  // Deterministic order: (view, tier, name).
  EXPECT_EQ(buckets[0].func, "[user]");
  EXPECT_EQ(buckets[0].samples, 1u);
  EXPECT_EQ(buckets[1].func, "alpha");
  EXPECT_EQ(buckets[1].samples, 1u);
  EXPECT_EQ(buckets[2].func, "alpha");  // 0x10FF still inside alpha
  EXPECT_EQ(buckets[2].samples, 2u);
  EXPECT_EQ(buckets[3].func, "[unknown]");
  EXPECT_EQ(buckets[3].samples, 8u);
  EXPECT_EQ(buckets[4].view, 1u);
  EXPECT_EQ(buckets[4].func, "beta");
  EXPECT_EQ(buckets[4].samples, 4u);

  EXPECT_EQ(p.view_weights()[0], 12u);
  EXPECT_EQ(p.view_weights()[1], 4u);
  EXPECT_EQ(p.tier_weights()[obs::kSampleTierTrace], 8u);
}

TEST(SampleProfile, MergeMatchesByNameNotByTableOrder) {
  // Same two functions registered in opposite order: merge must still
  // combine buckets exactly (name-keyed, not index-keyed).
  obs::SampleProfile a, b;
  a.set_period(100);
  a.add_function("f1", 0x1000, 0x100);
  a.add_function("f2", 0x2000, 0x100);
  b.set_period(100);
  b.add_function("f2", 0x2000, 0x100);
  b.add_function("f1", 0x1000, 0x100);
  a.record(0x1000, 0, 0, 3);
  b.record(0x1000, 0, 0, 5);
  b.record(0x2000, 0, 0, 7);
  a.merge(b);
  EXPECT_EQ(a.total_weight(), 15u);
  std::vector<obs::SampleProfile::Bucket> buckets = a.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].func, "f1");
  EXPECT_EQ(buckets[0].samples, 8u);
  EXPECT_EQ(buckets[1].func, "f2");
  EXPECT_EQ(buckets[1].samples, 7u);
}

TEST(SampleProfile, CollapsedAndJsonAreDeterministic) {
  auto build = [] {
    obs::SampleProfile p;
    p.set_period(4096);
    p.add_function("do_work", 0x1000, 0x40);
    p.record(0x1000, obs::kSampleTierTrace, 2, 10);
    p.record(0x1004, obs::kSampleTierBlock, 0, 1);
    return p;
  };
  obs::SampleProfile p = build(), q = build();
  EXPECT_EQ(p.to_json(), q.to_json());
  EXPECT_EQ(p.collapsed(), q.collapsed());
  // Collapsed lines are "view_<v>;<tier>;<func> <weight>".
  EXPECT_NE(p.collapsed().find("view_2;trace;do_work 10"), std::string::npos);
  EXPECT_NE(p.to_json().find("\"period\":4096"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TimeSeries + TimelineRollup (obs/timeseries.hpp).
// ---------------------------------------------------------------------------

TEST(TimelineRollup, ExactPercentilesAcrossVms) {
  std::vector<u64> sorted = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(obs::sorted_percentile(sorted, 50), 50u);
  EXPECT_EQ(obs::sorted_percentile(sorted, 90), 90u);
  EXPECT_EQ(obs::sorted_percentile(sorted, 99), 100u);
  EXPECT_EQ(obs::sorted_percentile(sorted, 0), 10u);
  EXPECT_EQ(obs::sorted_percentile({}, 50), 0u);

  // Rollup is input-order independent and aligns rows by interval index.
  std::vector<obs::TimeSeries> vms(3);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    vms[i].configure(1000, {"a", "b"});
    vms[i].append(1, 1000 + i, {u64{10} * (i + 1), u64{5}});
  }
  vms[0].append(2, 2000, {7, 9});  // only VM 0 reaches interval 2

  obs::TimelineRollup fwd = obs::TimelineRollup::build(
      {&vms[0], &vms[1], &vms[2]});
  obs::TimelineRollup rev = obs::TimelineRollup::build(
      {&vms[2], &vms[1], &vms[0]});
  EXPECT_EQ(fwd.to_json(), rev.to_json());

  ASSERT_EQ(fwd.intervals().size(), 2u);
  const obs::RollupCell& a = fwd.intervals()[0].cells[0];
  EXPECT_EQ(a.n, 3u);
  EXPECT_EQ(a.sum, 60u);
  EXPECT_EQ(a.min, 10u);
  EXPECT_EQ(a.max, 30u);
  EXPECT_EQ(a.p50, 20u);
  const obs::TimelineRollup::IntervalStats& tail = fwd.intervals()[1];
  EXPECT_EQ(tail.index, 2u);
  EXPECT_EQ(tail.cells[0].n, 1u);
  EXPECT_EQ(tail.cells[0].p99, 7u);

  EXPECT_FALSE(fwd.render_column("a", 10).empty());
  EXPECT_TRUE(fwd.render_column("nonexistent", 10).empty());
}

// ---------------------------------------------------------------------------
// vCPU sample trigger.
// ---------------------------------------------------------------------------

struct CountingSink final : public cpu::SampleSink {
  u64 fires = 0;
  u64 weight = 0;
  Cycles last_at = 0;
  void on_sample(Cycles now, GVirt, u8 tier, u64 periods) override {
    ++fires;
    weight += periods;
    last_at = now;
    EXPECT_LE(tier, cpu::kTierTrace);
    EXPECT_GE(periods, 1u);
  }
};

TEST(VcpuSampling, WeightAccountsForEveryElapsedPeriod) {
  harness::GuestSystem sys;
  CountingSink sink;
  const Cycles period = 4096;
  sys.vcpu().set_sample_sink(&sink, period);
  sys.os().spawn("gzip", apps::make_app("gzip", 2).model);
  sys.run_for(3'000'000);
  ASSERT_GT(sink.fires, 0u);
  // Weights make attribution cycle-proportional: the total weight must
  // cover every whole period the run crossed, even when one instruction
  // jumps simulated time by many periods (HLT idle, KSVC charges) — that
  // is exactly when fires < weight.
  EXPECT_LE(sink.fires, sink.weight);
  EXPECT_GE(sink.weight, (sink.last_at / period));
  sys.vcpu().set_sample_sink(nullptr, 0);
  u64 fires_before = sink.fires;
  sys.run_for(500'000);
  EXPECT_EQ(sink.fires, fires_before) << "detached sink must never fire";
}

TEST(VcpuSampling, SamplingDoesNotPerturbTheRun) {
  auto run = [](bool sampled) {
    harness::GuestSystem sys;
    CountingSink sink;
    if (sampled) sys.vcpu().set_sample_sink(&sink, 8192);
    sys.os().spawn("top", apps::make_app("top", 2).model);
    sys.run_for(2'000'000);
    return sys.vcpu().instructions_retired();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Engine attachment.
// ---------------------------------------------------------------------------

std::string run_engine_scenario(std::string* timeline_json) {
  harness::profile_all_apps();
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  core::FaceChangeEngine::TelemetryOptions topt;
  topt.sample_period = 4096;
  topt.timeline_interval = 500'000;
  topt.queue_depth = [&sys] {
    return static_cast<u64>(sys.os().events().size());
  };
  engine.attach_telemetry(topt);

  for (const char* app : {"gzip", "top"}) {
    engine.bind(app, engine.load_view(harness::profile_of(app)));
    apps::AppScenario scenario = apps::make_app(app, 2);
    sys.os().spawn(app, scenario.model);
    scenario.install_environment(sys.os());
  }
  sys.run_for(4'000'000);

  EXPECT_TRUE(engine.telemetry_attached());
  EXPECT_GT(engine.profile().total_weight(), 0u);
  EXPECT_FALSE(engine.timeline().empty());
  EXPECT_EQ(engine.timeline().columns(),
            core::FaceChangeEngine::timeline_columns());
  if (timeline_json != nullptr) *timeline_json = engine.timeline().to_json();
  return engine.profile().to_json();
}

TEST(EngineTelemetry, CapturesProfileAndTimelineDeterministically) {
  std::string timeline1, timeline2;
  std::string profile1 = run_engine_scenario(&timeline1);
  std::string profile2 = run_engine_scenario(&timeline2);
  EXPECT_EQ(profile1, profile2) << "profile JSON must be run-invariant";
  EXPECT_EQ(timeline1, timeline2) << "timeline JSON must be run-invariant";
  // The profile attributes real kernel symbols, not just fallbacks.
  EXPECT_NE(profile1.find("cpu_idle"), std::string::npos);
  // Snapshot rows carry the full schema width.
  EXPECT_NE(timeline1.find("\"interval\":500000"), std::string::npos);
}

TEST(EngineTelemetry, DetachStopsCaptureAndZeroPeriodMeansOff) {
  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  engine.attach_telemetry();
  EXPECT_TRUE(engine.telemetry_attached());
  engine.detach_telemetry();
  EXPECT_FALSE(engine.telemetry_attached());
  EXPECT_EQ(sys.vcpu().sample_sink(), nullptr);
  core::FaceChangeEngine::TelemetryOptions off;
  off.sample_period = 0;
  engine.attach_telemetry(off);
  EXPECT_FALSE(engine.telemetry_attached());
}

// ---------------------------------------------------------------------------
// Fleet telemetry determinism.
// ---------------------------------------------------------------------------

const core::SharedImage& test_image() {
  static std::unique_ptr<core::SharedImage> image = [] {
    harness::SharedImageOptions options;
    options.apps = {"gzip", "top"};
    options.profile_iterations = 5;
    return harness::build_shared_image(options);
  }();
  return *image;
}

fleet::FleetReport run_fleet(u32 jobs) {
  fleet::FleetOptions options;
  options.vms = 6;
  options.jobs = jobs;
  options.iterations = 2;
  options.run_budget = 4'000'000;
  options.capture_telemetry = true;
  options.sample_period = 4096;
  options.timeline_interval = 500'000;
  fleet::FleetRunner runner(test_image(), options);
  return runner.run();
}

TEST(FleetTelemetry, MergedOutputsAreJobsInvariantAndRepeatable) {
  fleet::FleetReport r1 = run_fleet(1);
  fleet::FleetReport r2 = run_fleet(2);
  fleet::FleetReport r4 = run_fleet(4);
  fleet::FleetReport again = run_fleet(4);

  std::string profile1 = r1.merged_profile().to_json();
  ASSERT_GT(r1.merged_profile().total_weight(), 0u);
  EXPECT_EQ(profile1, r2.merged_profile().to_json());
  EXPECT_EQ(profile1, r4.merged_profile().to_json());
  EXPECT_EQ(profile1, again.merged_profile().to_json());

  std::string timeline1 = r1.timeline_json();
  EXPECT_EQ(timeline1, r2.timeline_json());
  EXPECT_EQ(timeline1, r4.timeline_json());
  EXPECT_EQ(timeline1, again.timeline_json());

  // Per-VM capture landed: every VM has rows and sample weight.
  for (const fleet::VmResult& vm : r1.vms) {
    EXPECT_GT(vm.profile.total_weight(), 0u) << "vm " << vm.vm;
    EXPECT_FALSE(vm.timeline.empty()) << "vm " << vm.vm;
  }
  // The rollup covers all 6 VMs at the first interval.
  std::vector<const obs::TimeSeries*> series;
  for (const fleet::VmResult& vm : r1.vms) series.push_back(&vm.timeline);
  obs::TimelineRollup rollup = obs::TimelineRollup::build(series);
  ASSERT_FALSE(rollup.empty());
  EXPECT_EQ(rollup.intervals().front().cells[0].n, 6u);
}

TEST(FleetTelemetry, TelemetryOffLeavesResultsEmpty) {
  fleet::FleetOptions options;
  options.vms = 2;
  options.jobs = 1;
  options.iterations = 1;
  options.run_budget = 1'000'000;
  fleet::FleetRunner runner(test_image(), options);
  fleet::FleetReport report = runner.run();
  for (const fleet::VmResult& vm : report.vms) {
    EXPECT_EQ(vm.profile.total_weight(), 0u);
    EXPECT_TRUE(vm.timeline.empty());
  }
  EXPECT_EQ(report.merged_profile().total_weight(), 0u);
}

}  // namespace
}  // namespace fc
