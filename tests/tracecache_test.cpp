// Trace-tier tests: promotion and dispatch of hot loops, fused-pair parity
// against the uncached interpreter, lazy retirement through the write
// barrier (a guest store over the *middle* constituent frame of a
// multi-page trace must retire exactly that trace), code-load rewrites
// (the recovery path), and EPT view repoints mid-run — which must swing
// execution to the other view's traces without flushing anything, and
// revive the originals on switch-back.
#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "isa/assembler.hpp"
#include "vcpu/vcpu.hpp"

namespace fc::cpu {
namespace {

using isa::Assembler;
using isa::Reg;

constexpr GVirt kCodeVa = kKernelBase + 0x10000;
constexpr GVirt kStackTop = kKernelBase + 0x20000;
constexpr GVirt kIdt = kKernelBase + 0x30000;
constexpr GVirt kEsp0 = kKernelBase + 0x30400;

/// Bare machine + vCPU, kernel half direct-mapped (the blockcache_test
/// setup). Trace promotion is left at the default threshold unless a test
/// lowers it.
struct MiniGuest {
  MiniGuest() : machine(8), vcpu(machine) {
    mem::GuestPageTableBuilder builder(machine, 0x1000, 0x100000);
    dir = builder.create_directory();
    builder.map(dir, kKernelBase, 0, machine.guest_phys_pages());
    vcpu.set_cr3(dir);
    vcpu.set_idt_base(kIdt);
    vcpu.set_kstack_ptr_addr(kEsp0);
    vcpu.regs().mode = Mode::kKernel;
    vcpu.regs()[Reg::SP] = kStackTop;
  }

  void load(Assembler& a) {
    std::vector<u8> bytes = a.finish(kCodeVa);
    machine.pwrite_bytes(mem::GuestLayout::kernel_pa(kCodeVa), bytes);
    vcpu.regs().pc = kCodeVa;
  }

  Exit run(u64 budget = 100'000) { return vcpu.run(budget); }

  mem::Machine machine;
  Vcpu vcpu;
  GPhys dir = 0;
};

class TraceCacheFixture : public ::testing::Test {
 protected:
  MiniGuest g_;
};

/// The canonical countdown loop: A starts at `iters`, the body adds `step`
/// to D each pass. Identical layout for any `step`, so a rewritten page can
/// swap semantics without moving a single branch target.
Assembler countdown_loop(u32 iters, u32 step) {
  Assembler a;
  a.mov_imm(Reg::A, iters);
  a.mov_imm(Reg::B, 1);
  a.mov_imm(Reg::D, 0);
  auto head = a.make_label();
  a.bind(head);
  for (u32 i = 0; i < step; ++i) a.add(Reg::D, Reg::B);
  a.sub(Reg::A, Reg::B);
  a.jnz(head);
  a.hlt();
  return a;
}

TEST_F(TraceCacheFixture, ColdCodeIsNeverPromotedAtTheDefaultThreshold) {
  // 5 loop entries < kDefaultHotThreshold (16): the loop stays at the block
  // tier and the trace arena stays empty.
  Assembler a = countdown_loop(5, 1);
  g_.load(a);
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.trace_cache().stats().built, 0u);
  EXPECT_EQ(g_.vcpu.trace_cache().stats().dispatched, 0u);
}

TEST_F(TraceCacheFixture, HotLoopIsPromotedAndDispatched) {
  Assembler a = countdown_loop(200, 1);
  g_.load(a);
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 200u);
  const TraceCache::Stats& stats = g_.vcpu.trace_cache().stats();
  EXPECT_GT(stats.built, 0u);
  EXPECT_GT(stats.dispatched, 0u);
  // The bulk of the loop retired inside trace dispatches, not block steps.
  EXPECT_GT(stats.trace_insns, 400u);
  EXPECT_GT(g_.vcpu.trace_cache().size(), 0u);
}

TEST_F(TraceCacheFixture, TraceTierMatchesUncachedStateCyclesAndTlbMisses) {
  // sub_imm_a + jnz is the fusable shape (the Jcc consumes exactly the ZF
  // the ALU half just produced); the fused handler must be invisible in
  // registers, cycles and TLB charging.
  auto program = [] {
    Assembler a;
    a.mov_imm(Reg::A, 300);
    a.mov_imm(Reg::C, 0);
    auto head = a.make_label();
    a.bind(head);
    a.add(Reg::C, Reg::A);
    a.sub_imm_a(1);
    a.jnz(head);
    a.hlt();
    return a;
  };
  g_.vcpu.set_trace_hot_threshold(1);
  Assembler traced = program();
  g_.load(traced);
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);

  MiniGuest plain;
  plain.vcpu.set_block_cache_enabled(false);
  Assembler uncached = program();
  plain.load(uncached);
  EXPECT_EQ(plain.run().reason, ExitReason::kHalt);

  EXPECT_EQ(plain.vcpu.regs().gpr, g_.vcpu.regs().gpr);
  EXPECT_EQ(plain.vcpu.regs().pc, g_.vcpu.regs().pc);
  EXPECT_EQ(plain.vcpu.cycles(), g_.vcpu.cycles());
  EXPECT_EQ(plain.machine.mmu().stats().tlb_misses,
            g_.machine.mmu().stats().tlb_misses);
  EXPECT_GT(g_.vcpu.trace_cache().stats().fused_built, 0u);
  EXPECT_GT(g_.vcpu.trace_cache().stats().fused_exec, 0u);
}

// A guest store over the middle constituent frame of a three-page trace:
// the next probe of that trace retires it (lazy invalidation), while a
// trace on an unrelated frame stays resident untouched.
TEST_F(TraceCacheFixture, StoreOverMiddleFrameRetiresOnlyThatTrace) {
  g_.vcpu.set_trace_hot_threshold(1);
  Assembler a;
  a.mov_imm(Reg::A, 40);
  a.mov_imm(Reg::B, 1);
  a.mov_imm(Reg::D, 0);
  auto head = a.make_label();
  auto p1 = a.make_label();
  auto p2 = a.make_label();
  const u32 head_off = a.size();
  a.bind(head);                // page 0: loop entry (jnz_near target)
  a.add(Reg::D, Reg::B);
  a.jmp(p1);
  a.align(4096);
  const u32 p1_off = a.size();
  a.bind(p1);                  // page 1: the middle constituent
  a.mov_imm(Reg::C, 0x1111);   // immediate lives at p1 + 1
  a.jmp(p2);
  a.align(4096);
  a.bind(p2);                  // page 2: back edge
  a.sub(Reg::A, Reg::B);
  a.jnz_near(head);
  a.hlt();
  a.align(4096);
  const u32 b_entry_off = a.size();  // page 3: the unrelated loop
  a.mov_imm(Reg::A, 30);
  const u32 b_head_off = a.size();
  auto bhead = a.make_label();
  a.bind(bhead);
  a.add(Reg::D, Reg::B);
  a.sub(Reg::A, Reg::B);
  a.jnz(bhead);
  a.hlt();
  g_.load(a);

  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.regs()[Reg::C], 0x1111u);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 40u);
  g_.vcpu.regs().pc = kCodeVa + b_entry_off;
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);

  mem::Mmu& mmu = g_.machine.mmu();
  TraceCache& tc = g_.vcpu.trace_cache();
  auto frame_a = mmu.translate_page(page_base(kCodeVa + head_off));
  auto frame_b = mmu.translate_page(page_base(kCodeVa + b_head_off));
  ASSERT_TRUE(frame_a.has_value());
  ASSERT_TRUE(frame_b.has_value());
  ASSERT_NE(tc.find(*frame_a, page_offset(kCodeVa + head_off)), nullptr);
  Trace* trace_b = tc.find(*frame_b, page_offset(kCodeVa + b_head_off));
  ASSERT_NE(trace_b, nullptr);
  const u64 retired_before = tc.stats().retired;

  // Patch the page-1 immediate through the guest store path. Only the
  // three-page trace holds that frame.
  mmu.write8(kCodeVa + p1_off + 1, 0x22);
  mmu.write8(kCodeVa + p1_off + 2, 0x22);
  EXPECT_GE(tc.stats().inval_guest_write, 1u);
  EXPECT_EQ(tc.find(*frame_a, page_offset(kCodeVa + head_off)), nullptr);
  EXPECT_EQ(tc.stats().retired, retired_before + 1);
  // The unrelated trace survived, same arena entry, still live.
  EXPECT_EQ(tc.find(*frame_b, page_offset(kCodeVa + b_head_off)), trace_b);

  // Re-running the loop executes (and re-promotes) the patched bytes.
  g_.vcpu.regs().pc = kCodeVa;
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.regs()[Reg::C], 0x2222u);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 40u);
}

// The recovery path: a code-load rewrite (RecoveryEngine copying pristine
// bytes over a function body) must retire the traces built from the old
// bytes; the rerun executes the new semantics at full trace speed.
TEST_F(TraceCacheFixture, CodeLoadRewriteRetiresTracesOverTheFrame) {
  g_.vcpu.set_trace_hot_threshold(1);
  Assembler before = countdown_loop(50, 1);
  g_.load(before);
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 50u);
  const TraceCache::Stats& stats = g_.vcpu.trace_cache().stats();
  EXPECT_GT(stats.dispatched, 0u);
  const u64 retired_before = stats.retired;

  {
    mem::HostMemory::WriteCauseScope cause(g_.machine.host(),
                                           mem::FrameWriteCause::kCodeLoad);
    Assembler after = countdown_loop(50, 2);  // same entry, doubled step
    g_.machine.pwrite_bytes(mem::GuestLayout::kernel_pa(kCodeVa),
                            after.finish(kCodeVa));
  }
  EXPECT_GE(stats.inval_code_load, 1u);

  g_.vcpu.regs().pc = kCodeVa;
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 100u);  // new bytes, not the stale trace
  EXPECT_GT(stats.retired, retired_before);
}

// FACE-CHANGE's no-flush property at the trace tier: repointing the EPT to
// another view's frame mid-run swings the very next dispatch to that
// frame's traces (post-EPT keying — nothing to retire, nothing to flush),
// and switching back revives the original trace without a rebuild.
TEST_F(TraceCacheFixture, ViewRepointMidRunSwitchesTracesWithoutFlush) {
  g_.vcpu.set_trace_hot_threshold(1);
  // The alternate view's frame: the same loop with a doubled step, and the
  // same prologue so the loop head sits at the same offset. Filled before
  // any repoint, while the EPT still maps it identity.
  constexpr GPhys kAltPa = 0x40000;
  const auto alt_frame = *g_.machine.ept().translate(kAltPa);
  {
    Assembler alt = countdown_loop(60, 2);
    g_.machine.pwrite_bytes(kAltPa, alt.finish(kCodeVa));
  }
  Assembler base = countdown_loop(60, 1);
  g_.load(base);

  // Warm every base-frame block to promotion first (the entry block only
  // becomes hot on its second entry), so the switch-back phase below can
  // assert strictly that reviving the original frame builds nothing new.
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  g_.vcpu.regs().pc = kCodeVa;
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  g_.vcpu.regs().pc = kCodeVa;

  // 3 prologue instructions + 20 iterations x 3 = budget 63 stops exactly
  // at the loop head, mid-trace, with D == 20.
  EXPECT_EQ(g_.run(63).reason, ExitReason::kInstructionLimit);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 20u);
  TraceCache& tc = g_.vcpu.trace_cache();
  EXPECT_GT(tc.stats().built, 0u);
  EXPECT_GT(tc.stats().dispatched, 0u);
  const u64 built_before = tc.stats().built;
  const u64 retired_before = tc.stats().retired;

  // Repoint the code page to the alternate view's frame (what the engine's
  // view switch does) and resume mid-loop.
  g_.machine.ept().map(mem::GuestLayout::kernel_pa(kCodeVa), alt_frame);
  g_.machine.ept().invalidate();
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  // 40 remaining iterations ran the alternate bytes: D = 20 + 40 * 2.
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 100u);
  // A new trace was built for the new frame; the old one was NOT retired —
  // repoints invalidate nothing at this tier.
  EXPECT_GT(tc.stats().built, built_before);
  EXPECT_EQ(tc.stats().retired, retired_before);
  const u64 built_after_switch = tc.stats().built;

  // Switch back: the original trace is revived as-is — no rebuild.
  g_.machine.ept().map(mem::GuestLayout::kernel_pa(kCodeVa),
                       mem::GuestLayout::kernel_pa(kCodeVa) / kPageSize);
  g_.machine.ept().invalidate();
  g_.vcpu.regs().pc = kCodeVa;
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 60u);  // original single-step semantics
  EXPECT_EQ(tc.stats().built, built_after_switch);
  EXPECT_EQ(tc.stats().retired, retired_before);
}

TEST_F(TraceCacheFixture, DisablingDropsResidentTraces) {
  g_.vcpu.set_trace_hot_threshold(1);
  Assembler a = countdown_loop(100, 1);
  g_.load(a);
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_GT(g_.vcpu.trace_cache().size(), 0u);
  g_.vcpu.set_trace_cache_enabled(false);
  EXPECT_EQ(g_.vcpu.trace_cache().size(), 0u);
  // Re-enable and re-run: generations survived the clear, so rebuilding
  // against the same frames is safe.
  g_.vcpu.set_trace_cache_enabled(true);
  g_.vcpu.regs().pc = kCodeVa;
  EXPECT_EQ(g_.run().reason, ExitReason::kHalt);
  EXPECT_EQ(g_.vcpu.regs()[Reg::D], 100u);
  EXPECT_GT(g_.vcpu.trace_cache().size(), 0u);
}

}  // namespace
}  // namespace fc::cpu
