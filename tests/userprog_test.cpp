// User program / shellcode builder tests: the standard APPSTEP loop, the
// traced ($LD_PRELOAD-style) variant, shellcode building blocks, absolute
// jumps, and offline binary infection structure.
#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "harness/harness.hpp"

namespace fc {
namespace {

namespace abi = fc::abi;

TEST(UserProgram, StandardLoopStructure) {
  os::ProgramImage image = os::build_standard_loop();
  EXPECT_EQ(image.entry_offset, 0u);
  EXPECT_EQ(image.entry_va(), os::kUserCodeVa);
  // appstep; cmp; jz; int; jmp — decode and check.
  std::span<const u8> code(image.code);
  isa::DecodeResult r = isa::decode(code);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, isa::Op::kAppStep);
}

TEST(UserProgram, TracedLoopPrependsAWrite) {
  os::ProgramImage traced = os::build_traced_loop(1);
  EXPECT_GT(traced.code.size(), os::build_standard_loop().code.size());
  // It must start with the trace write's argument setup, not APPSTEP.
  isa::DecodeResult r = isa::decode(traced.code);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, isa::Op::kMovImm);
}

TEST(UserCodeBuilder, SyscallHelperSetsAllRegisters) {
  os::UserCodeBuilder b(0x09000000);
  b.syscall(abi::kSysOpen, 7, 1, 2);
  std::vector<u8> code = b.finish();
  // mov B; mov C; mov D; mov A; int 0x80
  u32 at = 0;
  std::vector<std::pair<isa::Op, u32>> expect = {
      {isa::Op::kMovImm, 7},  {isa::Op::kMovImm, 1},
      {isa::Op::kMovImm, 2},  {isa::Op::kMovImm, abi::kSysOpen},
      {isa::Op::kInt, 0x80},
  };
  for (auto [op, imm] : expect) {
    isa::DecodeResult r = isa::decode(std::span<const u8>(code).subspan(at));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.insn.op, op);
    EXPECT_EQ(r.insn.imm, imm);
    at += r.insn.length;
  }
  EXPECT_EQ(at, code.size());
}

TEST(UserCodeBuilder, AbsoluteJumpTargetsResolve) {
  os::UserCodeBuilder b(0x09000000);
  b.jmp_abs(0x08048000);
  std::vector<u8> code = b.finish();
  isa::DecodeResult r = isa::decode(code);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insn.op, isa::Op::kJmp);
  EXPECT_EQ(r.insn.rel_target(0x09000000), 0x08048000u);
}

TEST(UserCodeBuilder, ShellcodeActuallyRunsInAGuest) {
  // Inject a standalone shellcode blob into a fresh process and detour it:
  // getpid; write(1, …); exit(0). Verifies the whole injection pipeline.
  harness::GuestSystem sys;
  class Spin : public os::AppModel {
   public:
    os::AppAction next(u32, os::OsRuntime&, u32) override {
      return os::AppAction::compute_only(500);
    }
  };
  u32 pid = sys.os().spawn("victim", std::make_shared<Spin>());
  sys.run_for(2'000'000);

  os::UserCodeBuilder b(sys.os().next_inject_addr(pid));
  b.syscall(abi::kSysGetpid);
  b.syscall(abi::kSysWrite, 1, 99);
  b.syscall(abi::kSysExit, 0);
  GVirt at = sys.os().inject_code(pid, b.finish());
  EXPECT_EQ(at, os::kUserInjectVa);
  sys.os().detour(pid, at);

  u64 tty0 = sys.os().counters().tty_bytes_written;
  sys.run_until_exit(pid, 100'000'000);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));
  EXPECT_EQ(sys.os().counters().tty_bytes_written - tty0, 99u);
}

TEST(OfflineInfection, PrependedPayloadFallsThroughToTheOriginal) {
  // Infelf v2 (register dump): the infected image must run the payload's
  // tty writes and then the original program (which exits via its model).
  auto attack = attacks::make_attack("Infelf v2");
  ASSERT_TRUE(attack->offline());
  os::ProgramImage original = os::build_standard_loop();
  os::ProgramImage infected = attack->infect_program(original);
  EXPECT_GT(infected.code.size(), original.code.size());
  EXPECT_EQ(infected.entry_offset, 0u);  // entry redirected to the payload

  harness::GuestSystem sys;
  class OneShot : public os::AppModel {
   public:
    os::AppAction next(u32, os::OsRuntime&, u32) override {
      if (done_) return os::AppAction::syscall(abi::kSysExit);
      done_ = true;
      return os::AppAction::syscall(abi::kSysGetpid);
    }
   private:
    bool done_ = false;
  };
  u32 pid = sys.os().spawn("victim", std::make_shared<OneShot>(), infected);
  sys.run_until_exit(pid, 200'000'000);
  EXPECT_TRUE(sys.os().task_zombie_or_dead(pid));       // original ran
  EXPECT_GT(sys.os().counters().tty_bytes_written, 0u);  // payload ran first
}

TEST(AttackCorpus, HasThePapersSixteenEntries) {
  auto all = attacks::make_all_attacks();
  EXPECT_EQ(all.size(), 16u);
  int online = 0, offline = 0, rootkits = 0;
  for (const auto& attack : all) {
    if (attack->is_rootkit())
      ++rootkits;
    else if (attack->offline())
      ++offline;
    else
      ++online;
    EXPECT_FALSE(attack->detection_signature().empty()) << attack->name();
    EXPECT_FALSE(attack->victim().empty()) << attack->name();
  }
  EXPECT_EQ(rootkits, 3);  // KBeast, Sebek, Adore-ng
  // The paper counts 8 online + 5 offline; we implement Xlibtrace's
  // $LD_PRELOAD interposition as a program-image transform, so our split is
  // 7 runtime infections + 6 infected images — same 13 user-level attacks.
  EXPECT_EQ(offline, 6);
  EXPECT_EQ(online, 7);
}

}  // namespace
}  // namespace fc
