// vCPU interpreter tests: execution semantics, stack discipline, interrupt
// microcode (entry frames, stack switching, IRET), breakpoints, VM exits,
// and the deferred-IRQ ("missed edge") mechanism.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "vcpu/vcpu.hpp"

namespace fc::cpu {
namespace {

using isa::Assembler;
using isa::Reg;

constexpr GVirt kCodeVa = kKernelBase + 0x10000;
constexpr GVirt kStackTop = kKernelBase + 0x20000;
constexpr GVirt kIdt = kKernelBase + 0x30000;
constexpr GVirt kEsp0 = kKernelBase + 0x30400;

class VcpuFixture : public ::testing::Test {
 protected:
  VcpuFixture() : machine_(8), vcpu_(machine_) {
    // Direct-map the kernel half over all of guest physical memory.
    mem::GuestPageTableBuilder builder(machine_, 0x1000, 0x100000);
    dir_ = builder.create_directory();
    builder.map(dir_, kKernelBase, 0, machine_.guest_phys_pages());
    vcpu_.set_cr3(dir_);
    vcpu_.set_idt_base(kIdt);
    vcpu_.set_kstack_ptr_addr(kEsp0);
    vcpu_.regs().mode = Mode::kKernel;
    vcpu_.regs()[Reg::SP] = kStackTop;
  }

  /// Install code at kCodeVa and point the PC at it.
  void load(Assembler& a) {
    std::vector<u8> bytes = a.finish(kCodeVa);
    machine_.pwrite_bytes(mem::GuestLayout::kernel_pa(kCodeVa), bytes);
    vcpu_.regs().pc = kCodeVa;
  }

  Exit run(u64 budget = 10'000) { return vcpu_.run(budget); }

  mem::Machine machine_;
  Vcpu vcpu_;
  GPhys dir_ = 0;
};

TEST_F(VcpuFixture, ArithmeticAndFlags) {
  Assembler a;
  a.mov_imm(Reg::A, 7);
  a.mov_imm(Reg::B, 7);
  a.sub(Reg::A, Reg::B);  // A = 0 → ZF
  auto taken = a.make_label();
  a.jz(taken);
  a.mov_imm(Reg::C, 1);  // skipped
  a.bind(taken);
  a.mov_imm(Reg::D, 99);
  a.hlt();
  load(a);
  Exit exit = run();
  EXPECT_EQ(exit.reason, ExitReason::kHalt);
  EXPECT_EQ(vcpu_.regs()[Reg::C], 0u);
  EXPECT_EQ(vcpu_.regs()[Reg::D], 99u);
}

TEST_F(VcpuFixture, PushPopAndCallRet) {
  Assembler a;
  auto fn = a.make_label();
  a.mov_imm(Reg::A, 5);
  a.call(fn);
  a.hlt();
  a.bind(fn);
  a.prologue();
  a.add_imm_a(10);
  a.epilogue();
  load(a);
  EXPECT_EQ(run().reason, ExitReason::kHalt);
  EXPECT_EQ(vcpu_.regs()[Reg::A], 15u);
  EXPECT_EQ(vcpu_.regs()[Reg::SP], kStackTop);  // balanced
}

TEST_F(VcpuFixture, PushaPopaPreservesRegistersExceptEsp) {
  Assembler a;
  a.mov_imm(Reg::B, 0x1111);
  a.mov_imm(Reg::SI, 0x2222);
  a.pusha();
  a.mov_imm(Reg::B, 0xDEAD);
  a.mov_imm(Reg::SI, 0xBEEF);
  a.popa();
  a.hlt();
  load(a);
  EXPECT_EQ(run().reason, ExitReason::kHalt);
  EXPECT_EQ(vcpu_.regs()[Reg::B], 0x1111u);
  EXPECT_EQ(vcpu_.regs()[Reg::SI], 0x2222u);
  EXPECT_EQ(vcpu_.regs()[Reg::SP], kStackTop);
}

TEST_F(VcpuFixture, CallTabDispatchesThroughTable) {
  constexpr GVirt kTable = kKernelBase + 0x31000;
  Assembler a;
  auto target = a.make_label();
  a.mov_imm(Reg::A, 2);       // slot 2
  a.calltab(kTable);
  a.hlt();
  a.bind(target);
  a.mov_imm(Reg::D, 0x42);
  a.ret();
  load(a);
  // target label offset: recompute via a second assembly pass is overkill;
  // scan for the mov_imm D (B8+3=0xBA) instead.
  GVirt target_va = 0;
  for (GVirt va = kCodeVa; va < kCodeVa + 64; ++va) {
    if (machine_.pread8(mem::GuestLayout::kernel_pa(va)) == 0xBA) {
      target_va = va;
      break;
    }
  }
  ASSERT_NE(target_va, 0u);
  machine_.pwrite32(mem::GuestLayout::kernel_pa(kTable + 2 * 4), target_va);
  EXPECT_EQ(run().reason, ExitReason::kHalt);
  EXPECT_EQ(vcpu_.regs()[Reg::D], 0x42u);
}

TEST_F(VcpuFixture, Ud2TrapsAsInvalidOpcodeWithoutAdvancing) {
  Assembler a;
  a.nop();
  a.ud2();
  load(a);
  Exit exit = run();
  EXPECT_EQ(exit.reason, ExitReason::kInvalidOpcode);
  EXPECT_EQ(exit.pc, kCodeVa + 1);
  EXPECT_EQ(vcpu_.regs().pc, kCodeVa + 1);  // resumable at the same pc
}

TEST_F(VcpuFixture, SoftwareInterruptEntryAndIret) {
  // Handler at a known address increments A then irets.
  constexpr GVirt kHandler = kKernelBase + 0x40000;
  Assembler handler;
  handler.add_imm_a(100);
  handler.iret();
  std::vector<u8> hbytes = handler.finish(kHandler);
  machine_.pwrite_bytes(mem::GuestLayout::kernel_pa(kHandler), hbytes);
  machine_.pwrite32(mem::GuestLayout::kernel_pa(kIdt + 0x80 * 4), kHandler);

  Assembler a;
  a.mov_imm(Reg::A, 1);
  a.int_(0x80);
  a.hlt();
  load(a);
  EXPECT_EQ(run().reason, ExitReason::kHalt);
  EXPECT_EQ(vcpu_.regs()[Reg::A], 101u);
  EXPECT_EQ(vcpu_.regs()[Reg::SP], kStackTop);  // frame fully popped
  EXPECT_EQ(vcpu_.regs().mode, Mode::kKernel);
}

TEST_F(VcpuFixture, HardwareIrqUsesEsp0WhenInUserMode) {
  // User page so the loop can run unprivileged.
  mem::GuestPageTableBuilder builder(machine_, 0x1000, 0x100000);
  builder.map(dir_, 0x08048000, 0x300000, 1);
  Assembler user;
  auto spin = user.make_label();
  user.bind(spin);
  user.nop();
  user.jmp(spin);
  std::vector<u8> ubytes = user.finish(0x08048000);
  machine_.pwrite_bytes(0x300000, ubytes);

  constexpr GVirt kHandler = kKernelBase + 0x40000;
  Assembler handler;
  handler.mov_imm(Reg::D, 0x77);
  handler.hlt();  // exits so we can inspect
  std::vector<u8> hbytes = handler.finish(kHandler);
  machine_.pwrite_bytes(mem::GuestLayout::kernel_pa(kHandler), hbytes);
  machine_.pwrite32(mem::GuestLayout::kernel_pa(kIdt + (32 + 1) * 4),
                    kHandler);
  machine_.pwrite32(mem::GuestLayout::kernel_pa(kEsp0), kStackTop);

  vcpu_.regs().mode = Mode::kUser;
  vcpu_.regs().interrupts_enabled = true;
  vcpu_.regs().pc = 0x08048000;
  vcpu_.regs()[Reg::SP] = 0x08048800;
  vcpu_.run(50);
  vcpu_.raise_irq(1);
  Exit exit = vcpu_.run(1'000);
  EXPECT_EQ(exit.reason, ExitReason::kHalt);
  EXPECT_EQ(vcpu_.regs()[Reg::D], 0x77u);
  EXPECT_EQ(vcpu_.regs().mode, Mode::kKernel);
  // The frame was pushed on the kernel stack (esp0), not the user stack:
  // [ktop-12]=pc, [ktop-8]=user sp, [ktop-4]=flags(user,IF).
  u32 saved_sp = vcpu_.mmu().read32(kStackTop - 8);
  EXPECT_EQ(saved_sp, 0x08048800u);
  u32 flags = vcpu_.mmu().read32(kStackTop - 4);
  EXPECT_EQ(FlagsWord::mode(flags), Mode::kUser);
  EXPECT_TRUE(FlagsWord::interrupts(flags));
}

TEST_F(VcpuFixture, IrqNotDeliveredWhenInterruptsDisabled) {
  Assembler a;
  for (int i = 0; i < 10; ++i) a.nop();
  a.hlt();
  load(a);
  vcpu_.regs().interrupts_enabled = false;
  vcpu_.raise_irq(0);
  Exit exit = run();
  EXPECT_EQ(exit.reason, ExitReason::kHalt);  // IRQ stayed pending
  EXPECT_TRUE(vcpu_.irq_pending());
}

TEST_F(VcpuFixture, BreakpointExitsBeforeExecutionAndSuppressWorks) {
  Assembler a;
  a.nop();
  a.mov_imm(Reg::A, 1);
  a.hlt();
  load(a);
  vcpu_.add_breakpoint(kCodeVa + 1);
  Exit exit = run();
  EXPECT_EQ(exit.reason, ExitReason::kBreakpoint);
  EXPECT_EQ(exit.pc, kCodeVa + 1);
  EXPECT_EQ(vcpu_.regs()[Reg::A], 0u);  // mov not yet executed
  vcpu_.suppress_breakpoint_once();
  exit = run();
  EXPECT_EQ(exit.reason, ExitReason::kHalt);
  EXPECT_EQ(vcpu_.regs()[Reg::A], 1u);
}

TEST_F(VcpuFixture, CliStiArePrivileged) {
  mem::GuestPageTableBuilder builder(machine_, 0x1000, 0x100000);
  builder.map(dir_, 0x08050000, 0x310000, 1);
  Assembler user;
  user.cli();
  std::vector<u8> bytes = user.finish(0x08050000);
  machine_.pwrite_bytes(0x310000, bytes);
  vcpu_.regs().mode = Mode::kUser;
  vcpu_.regs().pc = 0x08050000;
  Exit exit = run();
  EXPECT_EQ(exit.reason, ExitReason::kInvalidOpcode);
}

TEST_F(VcpuFixture, RdtscReturnsCycleCounter) {
  Assembler a;
  for (int i = 0; i < 5; ++i) a.nop();
  a.rdtsc();
  a.hlt();
  load(a);
  EXPECT_EQ(run().reason, ExitReason::kHalt);
  EXPECT_GT(vcpu_.regs()[Reg::A], 0u);
  EXPECT_EQ(vcpu_.regs()[Reg::A], static_cast<u32>(vcpu_.cycles()) -
                                      vcpu_.perf_model().cost_hlt -
                                      vcpu_.perf_model().cost_default);
}

TEST_F(VcpuFixture, DeferredIrqsReleaseAfterDeadline) {
  constexpr GVirt kHandler = kKernelBase + 0x40000;
  Assembler handler;
  handler.mov_imm(Reg::D, 1);
  handler.iret();
  std::vector<u8> hbytes = handler.finish(kHandler);
  machine_.pwrite_bytes(mem::GuestLayout::kernel_pa(kHandler), hbytes);
  machine_.pwrite32(mem::GuestLayout::kernel_pa(kIdt + 32 * 4), kHandler);

  Assembler a;
  auto loop = a.make_label();
  a.bind(loop);
  a.nop();
  a.jmp(loop);
  load(a);
  vcpu_.regs().interrupts_enabled = true;

  vcpu_.raise_irq(0);
  vcpu_.defer_pending_irqs(vcpu_.cycles() + 500);  // "missed" edge
  EXPECT_FALSE(vcpu_.irq_pending());
  vcpu_.run(100);  // ~200 cycles: still parked
  EXPECT_EQ(vcpu_.regs()[Reg::D], 0u);
  vcpu_.run(400);  // past the release point: delivered
  EXPECT_EQ(vcpu_.regs()[Reg::D], 1u);
}

TEST_F(VcpuFixture, FetchFaultOnUnmappedCode) {
  vcpu_.regs().pc = 0x30000000;  // unmapped
  Exit exit = run();
  EXPECT_EQ(exit.reason, ExitReason::kFetchFault);
}

TEST_F(VcpuFixture, InstructionLimitExit) {
  Assembler a;
  auto loop = a.make_label();
  a.bind(loop);
  a.nop();
  a.jmp(loop);
  load(a);
  Exit exit = vcpu_.run(100);
  EXPECT_EQ(exit.reason, ExitReason::kInstructionLimit);
  EXPECT_GE(vcpu_.instructions_retired(), 100u);
}

TEST_F(VcpuFixture, TlbMissesAreChargedAsCycles) {
  Assembler a;
  a.load_abs(kKernelBase + 0x50000);  // touches a fresh data page
  a.hlt();
  load(a);
  Cycles before = vcpu_.cycles();
  run();
  // At minimum: fetch-page walk + data-page walk charged at cost_tlb_walk.
  EXPECT_GE(vcpu_.cycles() - before,
            2u * vcpu_.perf_model().cost_tlb_walk);
}

}  // namespace
}  // namespace fc::cpu
