// Kernel view initialization tests (§III-B1): UD2 filling, whole-function
// loading via prologue-signature search (including page-crossing functions),
// EPT artifact construction, and module shadowing.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace fc {
namespace {

using mem::GuestLayout;

class ViewBuilderFixture : public ::testing::Test {
 protected:
  ViewBuilderFixture() : builder_(sys_.hv(), sys_.os().kernel()) {}

  /// Current-EPT read of a kernel text byte (what the guest would fetch).
  u8 current_byte(GVirt va) {
    return sys_.hv().machine().pread8(GuestLayout::kernel_pa(va));
  }

  harness::GuestSystem sys_;
  core::ViewBuilder builder_;
};

TEST_F(ViewBuilderFixture, Ud2FillPattern) {
  std::vector<u8> page(kPageSize, 0);
  core::ViewBuilder::fill_ud2(page);
  for (u32 i = 0; i + 1 < kPageSize; i += 2) {
    ASSERT_EQ(page[i], 0x0F);
    ASSERT_EQ(page[i + 1], 0x0B);
  }
}

TEST_F(ViewBuilderFixture, FunctionBoundsMatchBuilderMetadata) {
  const os::KernelImage& kernel = sys_.os().kernel();
  int checked = 0;
  for (const os::FuncMeta& fn : kernel.functions) {
    if (!fn.has_frame) continue;
    if (++checked > 60) break;
    // Probe from the middle of the function.
    core::ViewBuilder::Bounds b = builder_.function_bounds(
        fn.address + fn.size / 2, kernel.text_base, kernel.text_end());
    EXPECT_EQ(b.start, fn.address) << fn.name;
    // The found end is the next aligned prologue — at or after the true end.
    EXPECT_GE(b.end, fn.address + fn.size) << fn.name;
    EXPECT_LE(b.end - fn.address, fn.size + 64u) << fn.name;
  }
  EXPECT_EQ(checked, 61);
}

TEST_F(ViewBuilderFixture, FunctionBoundsHandlePageCrossingFunctions) {
  const os::KernelImage& kernel = sys_.os().kernel();
  // Find a framed function that straddles a page boundary (§III-B1's
  // page-crossing case).
  const os::FuncMeta* crosser = nullptr;
  for (const os::FuncMeta& fn : kernel.functions) {
    if (fn.has_frame && page_of(fn.address) != page_of(fn.address + fn.size - 1)) {
      crosser = &fn;
      break;
    }
  }
  ASSERT_NE(crosser, nullptr) << "no page-crossing function in the kernel?";
  // Probe from the far side of the page boundary: the backward search must
  // continue across the page to find the prologue.
  GVirt probe = page_base(crosser->address + crosser->size - 1) + 4;
  core::ViewBuilder::Bounds b =
      builder_.function_bounds(probe, kernel.text_base, kernel.text_end());
  EXPECT_EQ(b.start, crosser->address);
}

TEST_F(ViewBuilderFixture, BuildsUd2ShadowsWithProfiledFunctionsLoaded) {
  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt target = kernel.symbols.must_addr("sys_getpid");
  core::KernelViewConfig cfg;
  cfg.app_name = "mini";
  cfg.base.insert(target + 4, target + 8);  // one basic block inside

  auto view = builder_.build(cfg, 7);
  // The whole containing function was loaded (not just the block).
  const hv::Symbol* fn = kernel.symbols.find_covering(target);
  EXPECT_TRUE(view->loaded.covers(fn->address, fn->address + fn->size));

  // Shadow frames: loaded bytes match pristine; unloaded bytes are UD2.
  u32 page = GuestLayout::kernel_pa(target) >> kPageShift;
  ASSERT_TRUE(view->shadow_frames.count(page));
  HostFrame shadow = view->shadow_frames.at(page);
  auto bytes = sys_.hv().machine().host().frame(shadow);
  EXPECT_EQ(bytes[page_offset(GuestLayout::kernel_pa(target))], 0x55);

  GVirt far_away = kernel.symbols.must_addr("udp_recvmsg");
  u32 far_page = GuestLayout::kernel_pa(far_away) >> kPageShift;
  ASSERT_TRUE(view->shadow_frames.count(far_page));
  auto far_bytes = sys_.hv().machine().host().frame(
      view->shadow_frames.at(far_page));
  u32 off = page_offset(GuestLayout::kernel_pa(far_away)) & ~1u;
  EXPECT_EQ(far_bytes[off], 0x0F);
  EXPECT_EQ(far_bytes[off + 1], 0x0B);
}

TEST_F(ViewBuilderFixture, EveryKernelCodePageIsShadowed) {
  core::KernelViewConfig cfg;
  cfg.app_name = "empty";
  cfg.base.insert(sys_.os().kernel().text_base,
                  sys_.os().kernel().text_base + 16);
  auto view = builder_.build(cfg, 1);
  const os::KernelImage& kernel = sys_.os().kernel();
  u32 first = GuestLayout::kernel_pa(page_base(kernel.text_base)) >> kPageShift;
  u32 last =
      GuestLayout::kernel_pa(kernel.text_end() - 1) >> kPageShift;
  for (u32 page = first; page <= last; ++page)
    EXPECT_TRUE(view->shadow_frames.count(page)) << page;
  EXPECT_FALSE(view->base_pdes.empty());
}

TEST_F(ViewBuilderFixture, VisibleUnlistedModulesAreShadowedAsUd2) {
  // e1000 is loaded and visible; a config without it gets all-UD2 module
  // pages ("everything not in the view is invalid code").
  core::KernelViewConfig cfg;
  cfg.app_name = "nomod";
  cfg.base.insert(sys_.os().kernel().text_base,
                  sys_.os().kernel().text_base + 16);
  auto view = builder_.build(cfg, 2);
  auto mod = sys_.os().loaded_module("e1000");
  ASSERT_TRUE(mod.has_value());
  u32 mod_page = GuestLayout::kernel_pa(mod->base) >> kPageShift;
  ASSERT_TRUE(view->shadow_frames.count(mod_page));
  auto bytes =
      sys_.hv().machine().host().frame(view->shadow_frames.at(mod_page));
  EXPECT_EQ(bytes[0], 0x0F);
  EXPECT_EQ(bytes[1], 0x0B);
  EXPECT_FALSE(view->module_ptes.empty());
}

TEST_F(ViewBuilderFixture, ListedModuleFunctionsAreLoaded) {
  auto mod = sys_.os().loaded_module("e1000");
  ASSERT_TRUE(mod.has_value());
  core::KernelViewConfig cfg;
  cfg.app_name = "withmod";
  cfg.base.insert(sys_.os().kernel().text_base,
                  sys_.os().kernel().text_base + 16);
  cfg.modules["e1000"].insert(4, 12);  // a block inside the first function
  auto view = builder_.build(cfg, 3);
  // The containing module function got loaded whole: its prologue byte is
  // present in the shadow.
  u32 mod_page = GuestLayout::kernel_pa(mod->base) >> kPageShift;
  auto bytes =
      sys_.hv().machine().host().frame(view->shadow_frames.at(mod_page));
  EXPECT_EQ(bytes[page_offset(GuestLayout::kernel_pa(mod->base))], 0x55);
}

TEST_F(ViewBuilderFixture, BlockGranularityLoadsOnlyProfiledBytes) {
  core::ViewBuilderOptions options;
  options.whole_function_loading = false;
  core::ViewBuilder block_builder(sys_.hv(), sys_.os().kernel(), options);

  const os::KernelImage& kernel = sys_.os().kernel();
  GVirt target = kernel.symbols.must_addr("sys_getpid");
  core::KernelViewConfig cfg;
  cfg.app_name = "blocks";
  cfg.base.insert(target + 4, target + 8);
  auto view = block_builder.build(cfg, 4);
  EXPECT_TRUE(view->loaded.covers(target + 4, target + 8));
  EXPECT_FALSE(view->loaded.contains(target));  // prologue NOT loaded
}

TEST_F(ViewBuilderFixture, LoadedViewsReflectConfigSize) {
  const core::KernelViewConfig& cfg = harness::profile_of("top");
  auto view = builder_.build(cfg, 5);
  // Whole-function relaxation only grows the loaded set.
  EXPECT_GE(view->loaded.size_bytes(), cfg.base.size_bytes());
}

}  // namespace
}  // namespace fc
