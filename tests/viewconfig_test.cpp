// Kernel view configuration files: serialization, merging, union views.
#include <gtest/gtest.h>

#include "core/viewconfig.hpp"

namespace fc::core {
namespace {

KernelViewConfig sample() {
  KernelViewConfig cfg;
  cfg.app_name = "apache";
  cfg.base.insert(0xC0400000, 0xC0400400);
  cfg.base.insert(0xC0500000, 0xC0501000);
  cfg.modules["e1000"].insert(0x0, 0x200);
  cfg.modules["e1000"].insert(0x400, 0x480);
  return cfg;
}

TEST(ViewConfig, SerializeParseRoundTrip) {
  KernelViewConfig cfg = sample();
  KernelViewConfig back = KernelViewConfig::parse(cfg.serialize());
  EXPECT_TRUE(cfg == back);
}

TEST(ViewConfig, SerializedFormIsReadable) {
  std::string text = sample().serialize();
  EXPECT_NE(text.find("app apache"), std::string::npos);
  EXPECT_NE(text.find("[base]"), std::string::npos);
  EXPECT_NE(text.find("[module e1000]"), std::string::npos);
  EXPECT_NE(text.find("0xc0400000 0xc0400400"), std::string::npos);
}

TEST(ViewConfig, SizeSpansBaseAndModules) {
  KernelViewConfig cfg = sample();
  EXPECT_EQ(cfg.size_bytes(), 0x400u + 0x1000u + 0x200u + 0x80u);
}

TEST(ViewConfig, MergeIsUnion) {
  KernelViewConfig a = sample();
  KernelViewConfig b;
  b.base.insert(0xC0400200, 0xC0400800);  // overlaps a's first range
  b.modules["kbeast"].insert(0, 0x100);
  a.merge(b);
  EXPECT_TRUE(a.base.contains(0xC0400700));
  EXPECT_EQ(a.modules.size(), 2u);
  EXPECT_EQ(a.base.size_bytes(), 0x800u + 0x1000u);
}

TEST(ViewConfig, IntersectMatchesModulesByName) {
  KernelViewConfig a = sample();
  KernelViewConfig b;
  b.base.insert(0xC0400100, 0xC0400200);
  b.modules["e1000"].insert(0x100, 0x300);
  b.modules["other"].insert(0, 0x1000);
  KernelViewConfig c = a.intersect(b);
  EXPECT_EQ(c.base.size_bytes(), 0x100u);
  ASSERT_EQ(c.modules.count("e1000"), 1u);
  EXPECT_EQ(c.modules.at("e1000").size_bytes(), 0x100u);  // [0x100,0x200)
  EXPECT_EQ(c.modules.count("other"), 0u);
}

TEST(ViewConfig, UnionView) {
  KernelViewConfig a = sample();
  KernelViewConfig b;
  b.app_name = "top";
  b.base.insert(0xC0600000, 0xC0600100);
  KernelViewConfig u = make_union_view({a, b});
  EXPECT_EQ(u.app_name, "union");
  EXPECT_TRUE(u.base.contains(0xC0400000));
  EXPECT_TRUE(u.base.contains(0xC0600000));
  EXPECT_EQ(u.size_bytes(), a.size_bytes() + 0x100u);
}

TEST(ViewConfig, ParseIgnoresCommentsAndBlankLines) {
  KernelViewConfig cfg = KernelViewConfig::parse(
      "# comment\n\napp x\n[base]\n# another\n0x00001000 0x00002000\n");
  EXPECT_EQ(cfg.app_name, "x");
  EXPECT_EQ(cfg.base.size_bytes(), 0x1000u);
}

TEST(ViewConfig, ParseRejectsMalformedLines) {
  EXPECT_DEATH(KernelViewConfig::parse("app x\n[base]\nnot a range\n"),
               "malformed");
}

}  // namespace
}  // namespace fc::core
