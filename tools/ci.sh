#!/usr/bin/env bash
# Tiered CI driver.
#
#   tools/ci.sh             tier 1: configure, build, run the full test suite
#   tools/ci.sh sanitize    sanitizer tier: same suite under ASan + UBSan
#   tools/ci.sh bench-smoke interpreter-throughput smoke run under ASan
#                           (exercises the block-cache on/off paths end to
#                           end; tiny budget, no speedup thresholds)
#   tools/ci.sh lint        clang-tidy over src/ with the repo .clang-tidy
#                           profile (skipped with a notice when clang-tidy
#                           is not installed — the container image has no
#                           llvm-tidy), then the fclint view audit
#   tools/ci.sh all         all tiers in sequence
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

tier1() {
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
}

lint() {
  # clang-tidy is optional tooling (not baked into the CI container);
  # when absent the tier degrades to the fclint view audit alone.
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Sources only; headers are pulled in via HeaderFilterRegex.
    find src tools -name '*.cpp' -print0 |
      xargs -0 -P "$jobs" -n 4 clang-tidy -p build --quiet
  else
    echo "lint: clang-tidy not installed; skipping the tidy pass" >&2
  fi
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs" --target fclint
  ./build/tools/fclint lint --baseline tools/fclint.baseline
}

sanitize() {
  cmake -B build-asan -S . -DFC_SANITIZE=ON -DFC_WERROR=ON
  cmake --build build-asan -j "$jobs"
  # Leak checking is off: the tier exists to catch out-of-bounds accesses
  # and UB in the simulator, and death tests fork in ways LeakSanitizer
  # reports spuriously.
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

bench_smoke() {
  cmake -B build-asan -S . -DFC_SANITIZE=ON -DFC_WERROR=ON
  cmake --build build-asan -j "$jobs" --target interp_throughput
  # --smoke: small cycle budget and no speedup assertion — sanitized builds
  # are not representative of throughput, only of memory safety on the
  # cached and uncached interpreter paths.
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/bench/interp_throughput --smoke
}

case "${1:-tier1}" in
  tier1)       tier1 ;;
  lint)        lint ;;
  sanitize)    sanitize ;;
  bench-smoke) bench_smoke ;;
  all)         tier1; lint; sanitize; bench_smoke ;;
  *) echo "usage: tools/ci.sh [tier1|lint|sanitize|bench-smoke|all]" >&2
     exit 2 ;;
esac
