#!/usr/bin/env bash
# Tiered CI driver.
#
#   tools/ci.sh             tier 1: configure, build, run the full test suite
#   tools/ci.sh sanitize    sanitizer tier: same suite under ASan + UBSan
#   tools/ci.sh tsan        ThreadSanitizer tier: the fleet determinism and
#                           COW isolation tests under -fsanitize=thread
#                           (workers share only refcounts + the result sink)
#   tools/ci.sh bench-smoke interpreter-throughput + fleet-scaling smoke
#                           runs under ASan (exercises the uncached, block
#                           and trace tiers and the COW fleet end to end;
#                           tiny budgets, no thresholds), then the release
#                           bench with the tier gates enforced (block >=
#                           2.0x over uncached, trace >= 1.5x over
#                           block-only, recorded in BENCH_interp.json)
#   tools/ci.sh fleet-scale-smoke
#                           determinism gate for the work-stealing fleet
#                           scheduler: bench/fleet_scale --smoke must emit
#                           byte-identical 8-VM report JSON + merged FCFL
#                           traces for jobs 1/4/8, and bench/fleet_http
#                           --smoke the same for the IO-heavy HTTP fleet
#   tools/ci.sh lint        clang-tidy over src/ with the repo .clang-tidy
#                           profile, then the fclint view audit. A missing
#                           clang-tidy fails the tier (CI images must ship
#                           it); set FC_LINT_OPTIONAL=1 to degrade to the
#                           fclint audit alone on dev boxes
#   tools/ci.sh probe-gate  boundary prober + data-view write monitor across
#                           all 12 app views: every UD2 trap must classify
#                           as closure-predicted or profile-gap (zero
#                           unexplained), the benign run must produce zero
#                           un-whitelisted writes, and the data-only rootkit
#                           positive controls must be detected. Publishes
#                           ci-artifacts/probe.json + dataview.json
#   tools/ci.sh trace-determinism
#                           record the 12-app scenario twice in separate
#                           fctrace processes and byte-compare the streams,
#                           then the in-process ctest variant
#   tools/ci.sh obs-disabled
#                           build with -DFC_OBS_DISABLED=ON (tracing/metrics
#                           emit macros compiled out) and run the full test
#                           suite, so the compiled-out path cannot rot
#   tools/ci.sh perf-gate   regression gate: re-run the release benches and
#                           the profiler attribution, then fcperf-check the
#                           fresh JSON against the committed baselines in
#                           bench/baselines/ (exact on deterministic
#                           metrics, tolerance bands on wall-clock ones).
#                           Finishes by injecting a synthetic regression
#                           and requiring the gate to trip on it
#   tools/ci.sh all         all tiers in sequence
#
# Artifacts (bench metrics JSON, trace recordings) land in ci-artifacts/.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

tier1() {
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
}

lint() {
  # The tidy pass is mandatory: a silently-skipped linter is a linter that
  # never fails. Dev boxes without clang-tidy can opt out explicitly with
  # FC_LINT_OPTIONAL=1.
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Sources only; headers are pulled in via HeaderFilterRegex.
    find src tools -name '*.cpp' -print0 |
      xargs -0 -P "$jobs" -n 4 clang-tidy -p build --quiet
  elif [ "${FC_LINT_OPTIONAL:-0}" = "1" ]; then
    echo "lint: clang-tidy not installed; FC_LINT_OPTIONAL=1 set," \
         "degrading to the fclint audit alone" >&2
  else
    echo "lint: clang-tidy not installed and FC_LINT_OPTIONAL is not set;" \
         "failing the tier (install clang-tidy or export" \
         "FC_LINT_OPTIONAL=1)" >&2
    exit 1
  fi
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs" --target fclint
  ./build/tools/fclint lint --baseline tools/fclint.baseline
}

probe_gate() {
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs" --target fclint
  mkdir -p ci-artifacts
  # Boundary prober over every Table I view: fclint exits non-zero on any
  # unexplained (non-closure, non-profile-gap) trap or an incomplete probe.
  ./build/tools/fclint probe --json ci-artifacts/probe.json
  # Data-view write monitor: benign run must be violation-free and the
  # data-only rootkit variants must be detected (runtime + static writer).
  ./build/tools/fclint data --json ci-artifacts/dataview.json
  echo "probe-gate: classification counts in ci-artifacts/probe.json," \
       "whitelist + verdicts in ci-artifacts/dataview.json"
}

sanitize() {
  cmake -B build-asan -S . -DFC_SANITIZE=ON -DFC_WERROR=ON
  cmake --build build-asan -j "$jobs"
  # Leak checking is off: the tier exists to catch out-of-bounds accesses
  # and UB in the simulator, and death tests fork in ways LeakSanitizer
  # reports spuriously.
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

tsan() {
  cmake -B build-tsan -S . -DFC_SANITIZE=thread -DFC_WERROR=ON
  cmake --build build-tsan -j "$jobs" --target fleet_test
  # The fleet suite is the only multi-threaded surface: run it (determinism
  # at jobs 1/4/8, COW promotion isolation, shared-image rehydration) with
  # TSan watching the shared-store refcounts and the result sink.
  ./build-tsan/tests/fleet_test
  # Trace-tier suite under TSan too: the dispatcher is per-vCPU, but fleet
  # workers each own one and share read-only code frames, so the tier's
  # invalidation paths run here with the race detector watching.
  cmake --build build-tsan -j "$jobs" --target tracecache_test
  ./build-tsan/tests/tracecache_test
}

bench_smoke() {
  cmake -B build-asan -S . -DFC_SANITIZE=ON -DFC_WERROR=ON
  cmake --build build-asan -j "$jobs" --target interp_throughput
  # --smoke: small cycle budget and no speedup assertion — sanitized builds
  # are not representative of throughput, only of memory safety on the
  # cached and uncached interpreter paths.
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/bench/interp_throughput --smoke
  cmake --build build-asan -j "$jobs" --target fleet_scale
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/bench/fleet_scale --smoke
  # Throughput gates run on the release build — the sanitized smoke pass
  # above checks memory safety, not speed. The bench enforces its own
  # thresholds (block >= 2.0x over uncached, trace >= 1.5x over block-only)
  # and writes the geomeans into BENCH_interp.json; the sed/awk re-check
  # keeps the shipped artifact honest even if the bench's gating changes.
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs" --target interp_throughput
  ./build/bench/interp_throughput
  trace_geomean="$(sed -n 's/.*"trace_geomean_speedup": \([0-9.]*\).*/\1/p' \
                   BENCH_interp.json)"
  if ! awk -v g="$trace_geomean" 'BEGIN { exit !(g >= 1.5) }'; then
    echo "bench-smoke: trace-tier geomean $trace_geomean < 1.5x gate" >&2
    exit 1
  fi
  echo "bench-smoke: trace tier ${trace_geomean}x over block-cache-only" \
       "(gate >= 1.5x)"
  # The benches embed their metrics in JSON; keep them as CI artifacts so
  # runs can be compared over time.
  mkdir -p ci-artifacts
  cp BENCH_interp.json ci-artifacts/BENCH_interp.json
  cp BENCH_fleet.json ci-artifacts/BENCH_fleet.json
  echo "bench-smoke: metrics artifacts at ci-artifacts/BENCH_interp.json" \
       "and ci-artifacts/BENCH_fleet.json"
}

fleet_scale_smoke() {
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs" --target fleet_scale fleet_http
  mkdir -p ci-artifacts
  # The bench re-runs the 8-VM fleet at jobs 1/4/8 with traces on, asserts
  # the merged outputs match internally, and writes them out; the cmp here
  # keeps the on-disk artifacts honest too (and fails loudly in CI logs).
  ./build/bench/fleet_scale --smoke --determinism-out ci-artifacts
  for j in 4 8; do
    cmp "ci-artifacts/fleet-report-jobs1.json" \
        "ci-artifacts/fleet-report-jobs$j.json"
    cmp "ci-artifacts/fleet-trace-jobs1.fcfl" \
        "ci-artifacts/fleet-trace-jobs$j.fcfl"
  done
  echo "fleet-scale-smoke: report + FCFL trace byte-identical at jobs 1/4/8"
  # Same gate for the IO-heavy fleet: the open-loop HTTP bench replays its
  # ring-transport fleet at jobs 1/4/8 and the merged report + trace must
  # not depend on worker interleaving.
  ./build/bench/fleet_http --smoke --determinism-out ci-artifacts
  for j in 4 8; do
    cmp "ci-artifacts/io-report-jobs1.json" \
        "ci-artifacts/io-report-jobs$j.json"
    cmp "ci-artifacts/io-trace-jobs1.fcfl" \
        "ci-artifacts/io-trace-jobs$j.fcfl"
  done
  echo "fleet-scale-smoke: IO fleet report + FCFL trace byte-identical" \
       "at jobs 1/4/8"
}

trace_determinism() {
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs" --target fctrace
  mkdir -p ci-artifacts
  # Cross-process reproducibility: two fctrace invocations of the same
  # scenario must serialize byte-identical streams.
  ./build/tools/fctrace record -o ci-artifacts/trace-a.fctrace \
    --chrome ci-artifacts/trace-a.json \
    --metrics ci-artifacts/metrics-a.json
  ./build/tools/fctrace record -o ci-artifacts/trace-b.fctrace
  cmp ci-artifacts/trace-a.fctrace ci-artifacts/trace-b.fctrace
  echo "trace-determinism: cross-process streams byte-identical"
  # In-process variant (also part of the tier-1 ctest suite).
  ctest --test-dir build --output-on-failure -R '^trace_determinism$'
}

obs_disabled() {
  cmake -B build-noobs -S . -DFC_OBS_DISABLED=ON -DFC_WERROR=ON
  cmake --build build-noobs -j "$jobs"
  # Emit-site-dependent tests skip themselves (SKIP_RETURN_CODE / GTEST_SKIP)
  # — everything else must still pass with the macros compiled out.
  ctest --test-dir build-noobs --output-on-failure -j "$jobs"
  echo "obs-disabled: suite green with tracing/metrics emit compiled out"
}

perf_gate() {
  cmake -B build -S . -DFC_WERROR=ON
  cmake --build build -j "$jobs" \
    --target interp_throughput fleet_scale fleet_http fctrace fcperf
  mkdir -p ci-artifacts
  # Fresh artifacts: the release throughput bench (also enforces its own
  # tier + profiler-overhead thresholds), the fleet smoke bench, the IO
  # saturation-knee bench (enforces its own >= 3x batched-over-legacy
  # gate), and the deterministic cycle attribution of the 12-app scenario.
  ./build/bench/interp_throughput
  ./build/bench/fleet_scale --smoke
  ./build/bench/fleet_http --smoke
  ./build/tools/fctrace flame -o ci-artifacts/flame.collapsed \
    --json ci-artifacts/prof_flame.json
  # Gate against the committed baselines. Deterministic metrics must match
  # exactly; wall-clock metrics only fail on collapse (see the .rules files
  # for per-metric tolerances). Refreshing a baseline is a reviewed change:
  # regenerate the JSON and commit it alongside the change that moved it.
  ./build/tools/fcperf check bench/baselines/BENCH_interp.json \
    BENCH_interp.json --rules bench/baselines/interp.rules --name interp
  ./build/tools/fcperf check bench/baselines/BENCH_fleet.json \
    BENCH_fleet.json --rules bench/baselines/fleet.rules --name fleet
  ./build/tools/fcperf check bench/baselines/BENCH_io.json \
    BENCH_io.json --rules bench/baselines/io.rules --name io
  ./build/tools/fcperf check bench/baselines/prof_flame.json \
    ci-artifacts/prof_flame.json --rules bench/baselines/flame.rules \
    --name flame
  # The gate must also be able to FAIL: inject a synthetic regression into
  # a copy of the fresh artifact and require a non-zero exit.
  sed 's/"trace_geomean_speedup": [0-9.]*/"trace_geomean_speedup": 0.010/' \
    BENCH_interp.json > ci-artifacts/BENCH_interp_regressed.json
  if ./build/tools/fcperf check bench/baselines/BENCH_interp.json \
       ci-artifacts/BENCH_interp_regressed.json \
       --rules bench/baselines/interp.rules --name injected-regression; then
    echo "perf-gate: injected regression was NOT caught" >&2
    exit 1
  fi
  echo "perf-gate: baselines hold; injected regression correctly trips"
}

case "${1:-tier1}" in
  tier1)             tier1 ;;
  lint)              lint ;;
  probe-gate)        probe_gate ;;
  sanitize)          sanitize ;;
  tsan)              tsan ;;
  bench-smoke)       bench_smoke ;;
  fleet-scale-smoke) fleet_scale_smoke ;;
  trace-determinism) trace_determinism ;;
  obs-disabled)      obs_disabled ;;
  perf-gate)         perf_gate ;;
  all)               tier1; lint; probe_gate; sanitize; tsan; bench_smoke
                     fleet_scale_smoke; trace_determinism; obs_disabled
                     perf_gate ;;
  *) echo "usage: tools/ci.sh [tier1|lint|probe-gate|sanitize|tsan|bench-smoke|fleet-scale-smoke|trace-determinism|obs-disabled|perf-gate|all]" >&2
     exit 2 ;;
esac
