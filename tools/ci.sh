#!/usr/bin/env bash
# Tiered CI driver.
#
#   tools/ci.sh            tier 1: configure, build, run the full test suite
#   tools/ci.sh sanitize   sanitizer tier: same suite under ASan + UBSan
#   tools/ci.sh all        both tiers in sequence
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

tier1() {
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
}

sanitize() {
  cmake -B build-asan -S . -DFC_SANITIZE=ON
  cmake --build build-asan -j "$jobs"
  # Leak checking is off: the tier exists to catch out-of-bounds accesses
  # and UB in the simulator, and death tests fork in ways LeakSanitizer
  # reports spuriously.
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

case "${1:-tier1}" in
  tier1)    tier1 ;;
  sanitize) sanitize ;;
  all)      tier1; sanitize ;;
  *) echo "usage: tools/ci.sh [tier1|sanitize|all]" >&2; exit 2 ;;
esac
