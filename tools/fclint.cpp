// fclint — static lint over the FACE-CHANGE kernel views.
//
// Boots a guest (deterministic kernel layout), decodes the whole kernel
// image plus loaded modules into a call graph, profiles the Table I
// applications, and lints every view:
//
//   fclint [lint] [-n iter] [--baseline FILE] [--update-baseline FILE] [app..]
//       lint each app's view: unknown ranges (errors), dead members, live
//       0B 0F hazards, page-crossing functions, UD2-fill gaps (errors).
//       With --baseline, hazard sites not listed in FILE are errors too.
//   fclint graph                  whole-kernel call-graph statistics
//   fclint hazards                every static 0B 0F hazard site
//   fclint probe [--json FILE] [app..]
//       run the boundary probe for each app's view and classify every trap
//       (closure-predicted / profile-gap / true hazard). Fails on any
//       unexplained trap or an incomplete probe run.
//   fclint data [--json FILE]
//       data-view write integrity: benign 12-app run under the armed
//       monitor (must be violation-free) plus the data-only rootkit
//       positive controls (must be detected).
//
// Exit status: 0 clean, 1 lint errors / new hazards / probe-gate failures,
// 2 usage.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/closure.hpp"
#include "analysis/hazards.hpp"
#include "analysis/lint.hpp"
#include "harness/harness.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "support/hexdump.hpp"
#include "support/logging.hpp"

using namespace fc;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fclint [command] [flags]\n"
      "  lint [-n iterations] [--baseline FILE] [--update-baseline FILE]\n"
      "       [app...]        lint app views (default: all 12 apps)\n"
      "  graph                call-graph statistics\n"
      "  hazards              list every static 0B 0F hazard site\n"
      "  probe [--json FILE] [app...]\n"
      "                       boundary probe + trap classification\n"
      "  data [--json FILE]   data-view write monitor gate\n"
      "flags: --json FILE (lint/probe/data: machine-readable report),\n"
      "       --log-level LEVEL (or FC_LOG_LEVEL env), --trace-out FILE\n"
      "       (record the profiling runs; writes Chrome trace JSON)\n");
  std::exit(2);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch; break;
    }
  }
  return out;
}

/// Function-relative key for a finding address ("sys_read+0x12"), falling
/// back to the raw address outside any known function.
std::string relative_key(const analysis::CallGraph& graph, GVirt address) {
  const analysis::FuncNode* fn = graph.function_at(address);
  if (fn == nullptr) return hex32(address);
  std::ostringstream out;
  out << fn->name << "+0x" << std::hex << (address - fn->start);
  return out.str();
}

std::set<std::string> read_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fclint: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::set<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') keys.insert(line);
  }
  return keys;
}

int cmd_graph() {
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  analysis::CallGraph::Stats s = graph.stats();
  std::printf("functions:          %zu\n", s.functions);
  std::printf("direct calls:       %zu\n", s.direct_calls);
  std::printf("indirect sites:     %zu\n", s.indirect_sites);
  std::printf("unresolved targets: %zu\n", s.unresolved_targets);
  std::printf("page-crossing:      %zu\n", s.page_crossing);
  std::printf("decode failures:    %zu\n", s.decode_failures);
  std::printf("dispatch targets:   %zu\n",
              graph.dispatch_target_indices().size());
  return s.decode_failures == 0 ? 0 : 1;
}

int cmd_hazards() {
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  std::vector<analysis::HazardSite> sites =
      analysis::enumerate_hazard_sites(graph);
  for (const analysis::HazardSite& s : sites) {
    std::printf("%s  site %s ret %s\n", s.key(graph).c_str(),
                hex32(s.site).c_str(), hex32(s.ret).c_str());
  }
  std::printf("%zu hazard sites (odd return addresses: the 0B 0F "
              "instant-recovery cases)\n",
              sites.size());
  return 0;
}

int cmd_probe(const std::string& json_path,
              std::vector<std::string> apps) {
  if (apps.empty()) apps = apps::all_app_names();
  bool failed = false;
  std::vector<harness::ProbeRunResult> results;
  u64 traps = 0, predicted = 0, gaps = 0, unexplained = 0;
  for (const std::string& app : apps) {
    harness::ProbeRunResult r = harness::run_boundary_probe(app);
    std::printf(
        "%-10s probes %3zu  edges %3zu/%3zu  traps %5llu  predicted %5llu  "
        "profile-gap %3llu  unexplained %llu%s\n",
        r.app.c_str(), r.plan.calls.size(), r.plan.covered_edges,
        r.plan.boundary_edges, (unsigned long long)r.traps,
        (unsigned long long)r.predicted, (unsigned long long)r.profile_gap,
        (unsigned long long)r.unexplained,
        r.completed ? "" : "  [INCOMPLETE]");
    failed = failed || r.unexplained > 0 || !r.completed;
    traps += r.traps;
    predicted += r.predicted;
    gaps += r.profile_gap;
    unexplained += r.unexplained;
    results.push_back(std::move(r));
  }
  std::printf(
      "total: %llu traps = %llu closure-predicted + %llu profile-gap + "
      "%llu unexplained\n",
      (unsigned long long)traps, (unsigned long long)predicted,
      (unsigned long long)gaps, (unsigned long long)unexplained);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"apps\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const harness::ProbeRunResult& r = results[i];
      out << "    {\"app\": \"" << json_escape(r.app) << "\""
          << ", \"probes\": " << r.plan.calls.size()
          << ", \"boundary_edges\": " << r.plan.boundary_edges
          << ", \"covered_edges\": " << r.plan.covered_edges
          << ", \"traps\": " << r.traps << ", \"predicted\": " << r.predicted
          << ", \"profile_gap\": " << r.profile_gap
          << ", \"unexplained\": " << r.unexplained
          << ", \"completed\": " << (r.completed ? "true" : "false") << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"totals\": {\"traps\": " << traps
        << ", \"predicted\": " << predicted << ", \"profile_gap\": " << gaps
        << ", \"unexplained\": " << unexplained << "}\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failed ? 1 : 0;
}

int cmd_data(const std::string& json_path) {
  harness::DataViewRunResult benign = harness::run_data_view_benign();
  bool failed = !benign.violations.empty();
  std::printf(
      "benign     writers %zu  checked %llu  whitelisted %llu  violations "
      "%llu%s\n",
      benign.whitelist_writers, (unsigned long long)benign.stats.writes_checked,
      (unsigned long long)benign.stats.whitelisted,
      (unsigned long long)benign.stats.violations,
      benign.violations.empty() ? "" : "  [FALSE POSITIVE]");

  struct AttackRow {
    harness::DataViewRunResult r;
    bool detected;
  };
  std::vector<AttackRow> rows;
  for (const auto& attack : attacks::make_data_only_attacks()) {
    harness::DataViewRunResult r = harness::run_data_view_attack(*attack);
    const bool detected = !r.violations.empty() && r.untrusted_static_writer;
    std::printf("%-18s violations %llu  static-writer %s  %s\n",
                r.name.c_str(), (unsigned long long)r.stats.violations,
                r.untrusted_static_writer ? "yes" : "no",
                detected ? "DETECTED" : "[MISSED]");
    failed = failed || !detected;
    rows.push_back({std::move(r), detected});
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"whitelist_writers\": " << benign.whitelist_writers
        << ",\n  \"benign\": {\"writes_checked\": "
        << benign.stats.writes_checked
        << ", \"whitelisted\": " << benign.stats.whitelisted
        << ", \"violations\": " << benign.stats.violations
        << "},\n  \"attacks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"name\": \"" << json_escape(rows[i].r.name) << "\""
          << ", \"violations\": " << rows[i].r.stats.violations
          << ", \"untrusted_static_writer\": "
          << (rows[i].r.untrusted_static_writer ? "true" : "false")
          << ", \"detected\": " << (rows[i].detected ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failed ? 1 : 0;
}

int cmd_lint(u32 iterations, const std::string& baseline_path,
             const std::string& update_path, const std::string& json_path,
             const std::vector<std::string>& only_apps) {
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  std::vector<analysis::HazardSite> hazards =
      analysis::enumerate_hazard_sites(graph);

  // Hazard baseline: symbolic keys survive layout changes; any key not in
  // the baseline is a *new* hazard an engineer must acknowledge.
  bool failed = false;
  if (!baseline_path.empty()) {
    std::set<std::string> known = read_baseline(baseline_path);
    std::size_t new_sites = 0;
    for (const analysis::HazardSite& s : hazards) {
      if (known.count(s.key(graph)) == 0) {
        std::printf("NEW hazard site: %s (ret %s)\n", s.key(graph).c_str(),
                    hex32(s.ret).c_str());
        ++new_sites;
        failed = true;
      }
    }
    std::printf("baseline: %zu known, %zu current, %zu new\n", known.size(),
                hazards.size(), new_sites);
  }
  if (!update_path.empty()) {
    std::set<std::string> keys;
    for (const analysis::HazardSite& s : hazards) keys.insert(s.key(graph));
    std::ofstream out(update_path);
    out << "# fclint hazard baseline: every statically-known 0B 0F call "
           "site,\n# as caller+offset->callee keys. Regenerate with\n"
           "# `fclint lint --update-baseline <file>`.\n";
    for (const std::string& key : keys) out << key << "\n";
    std::printf("wrote %s (%zu sites)\n", update_path.c_str(), keys.size());
  }

  // Build each app's view inside the engine so the UD2-gap check can see
  // the actual shadow frames.
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  std::vector<analysis::LintReport> reports;
  for (const core::KernelViewConfig& config :
       harness::profile_all_apps(iterations)) {
    if (!only_apps.empty() &&
        std::find(only_apps.begin(), only_apps.end(), config.app_name) ==
            only_apps.end()) {
      continue;
    }
    u32 id = engine.load_view(config);
    analysis::LintReport report =
        analysis::lint_view(graph, hazards, config, engine.view(id),
                            &sys.hv().machine().host());
    std::printf("%s\n", report.render().c_str());
    failed = failed || report.failed();
    reports.push_back(std::move(report));
  }
  if (!json_path.empty()) {
    // Findings are already in deterministic function-relative-key order
    // (lint_view sorts them), so the artifact diffs cleanly across runs.
    std::ofstream out(json_path);
    out << "{\n  \"apps\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const analysis::LintReport& report = reports[i];
      out << "    {\"app\": \"" << json_escape(report.app) << "\""
          << ", \"member_functions\": " << report.member_functions
          << ", \"findings\": [\n";
      for (std::size_t j = 0; j < report.findings.size(); ++j) {
        const analysis::LintFinding& f = report.findings[j];
        out << "      {\"kind\": \"" << analysis::lint_kind_name(f.kind)
            << "\", \"error\": " << (f.error ? "true" : "false")
            << ", \"key\": \"" << json_escape(relative_key(graph, f.address))
            << "\", \"address\": \"" << hex32(f.address) << "\""
            << ", \"detail\": \"" << json_escape(f.detail) << "\"}"
            << (j + 1 < report.findings.size() ? "," : "") << "\n";
      }
      out << "    ]}" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = argc > 1 ? argv[1] : "lint";
  int first = 2;
  if (cmd == "-n" || cmd.rfind("--", 0) == 0) {  // bare `fclint --flag ...`
    cmd = "lint";
    first = 1;
  }
  if (cmd == "graph") return cmd_graph();
  if (cmd == "hazards") return cmd_hazards();
  if (cmd != "lint" && cmd != "probe" && cmd != "data") usage();

  u32 iterations = 20;
  std::string baseline, update, trace_out, json_path;
  std::vector<std::string> apps;
  for (int i = first; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-n") && i + 1 < argc) {
      iterations = static_cast<u32>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
      baseline = argv[++i];
    } else if (!std::strcmp(argv[i], "--update-baseline") && i + 1 < argc) {
      update = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (!std::strcmp(argv[i], "--log-level") && i + 1 < argc) {
      auto level = parse_log_level(argv[++i]);
      if (!level) {
        std::fprintf(stderr, "fclint: unknown log level '%s'\n", argv[i]);
        return 2;
      }
      set_log_level(*level);
    } else if (argv[i][0] == '-') {
      usage();
    } else {
      apps.emplace_back(argv[i]);
    }
  }
  if (!trace_out.empty()) obs::recorder().start();
  int rc = 0;
  if (cmd == "probe") {
    rc = cmd_probe(json_path, apps);
  } else if (cmd == "data") {
    rc = cmd_data(json_path);
  } else {
    rc = cmd_lint(iterations, baseline, update, json_path, apps);
  }
  if (!trace_out.empty()) {
    obs::recorder().stop();
    std::ofstream out(trace_out);
    out << obs::chrome_trace_json(obs::recorder());
    std::printf("wrote %s (%llu events)\n", trace_out.c_str(),
                static_cast<unsigned long long>(obs::recorder().size()));
  }
  return rc;
}
