// fclint — static lint over the FACE-CHANGE kernel views.
//
// Boots a guest (deterministic kernel layout), decodes the whole kernel
// image plus loaded modules into a call graph, profiles the Table I
// applications, and lints every view:
//
//   fclint [lint] [-n iter] [--baseline FILE] [--update-baseline FILE] [app..]
//       lint each app's view: unknown ranges (errors), dead members, live
//       0B 0F hazards, page-crossing functions, UD2-fill gaps (errors).
//       With --baseline, hazard sites not listed in FILE are errors too.
//   fclint graph                  whole-kernel call-graph statistics
//   fclint hazards                every static 0B 0F hazard site
//
// Exit status: 0 clean, 1 lint errors or new hazard sites, 2 usage.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/closure.hpp"
#include "analysis/hazards.hpp"
#include "analysis/lint.hpp"
#include "harness/harness.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "support/hexdump.hpp"
#include "support/logging.hpp"

using namespace fc;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fclint [command] [flags]\n"
      "  lint [-n iterations] [--baseline FILE] [--update-baseline FILE]\n"
      "       [app...]        lint app views (default: all 12 apps)\n"
      "  graph                call-graph statistics\n"
      "  hazards              list every static 0B 0F hazard site\n"
      "flags: --log-level LEVEL (or FC_LOG_LEVEL env), --trace-out FILE\n"
      "       (record the profiling runs; writes Chrome trace JSON)\n");
  std::exit(2);
}

std::set<std::string> read_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fclint: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::set<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') keys.insert(line);
  }
  return keys;
}

int cmd_graph() {
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  analysis::CallGraph::Stats s = graph.stats();
  std::printf("functions:          %zu\n", s.functions);
  std::printf("direct calls:       %zu\n", s.direct_calls);
  std::printf("indirect sites:     %zu\n", s.indirect_sites);
  std::printf("unresolved targets: %zu\n", s.unresolved_targets);
  std::printf("page-crossing:      %zu\n", s.page_crossing);
  std::printf("decode failures:    %zu\n", s.decode_failures);
  std::printf("dispatch targets:   %zu\n",
              graph.dispatch_target_indices().size());
  return s.decode_failures == 0 ? 0 : 1;
}

int cmd_hazards() {
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  std::vector<analysis::HazardSite> sites =
      analysis::enumerate_hazard_sites(graph);
  for (const analysis::HazardSite& s : sites) {
    std::printf("%s  site %s ret %s\n", s.key(graph).c_str(),
                hex32(s.site).c_str(), hex32(s.ret).c_str());
  }
  std::printf("%zu hazard sites (odd return addresses: the 0B 0F "
              "instant-recovery cases)\n",
              sites.size());
  return 0;
}

int cmd_lint(u32 iterations, const std::string& baseline_path,
             const std::string& update_path,
             const std::vector<std::string>& only_apps) {
  harness::GuestSystem sys;
  analysis::CallGraph graph = harness::build_call_graph(sys);
  std::vector<analysis::HazardSite> hazards =
      analysis::enumerate_hazard_sites(graph);

  // Hazard baseline: symbolic keys survive layout changes; any key not in
  // the baseline is a *new* hazard an engineer must acknowledge.
  bool failed = false;
  if (!baseline_path.empty()) {
    std::set<std::string> known = read_baseline(baseline_path);
    std::size_t new_sites = 0;
    for (const analysis::HazardSite& s : hazards) {
      if (known.count(s.key(graph)) == 0) {
        std::printf("NEW hazard site: %s (ret %s)\n", s.key(graph).c_str(),
                    hex32(s.ret).c_str());
        ++new_sites;
        failed = true;
      }
    }
    std::printf("baseline: %zu known, %zu current, %zu new\n", known.size(),
                hazards.size(), new_sites);
  }
  if (!update_path.empty()) {
    std::set<std::string> keys;
    for (const analysis::HazardSite& s : hazards) keys.insert(s.key(graph));
    std::ofstream out(update_path);
    out << "# fclint hazard baseline: every statically-known 0B 0F call "
           "site,\n# as caller+offset->callee keys. Regenerate with\n"
           "# `fclint lint --update-baseline <file>`.\n";
    for (const std::string& key : keys) out << key << "\n";
    std::printf("wrote %s (%zu sites)\n", update_path.c_str(), keys.size());
  }

  // Build each app's view inside the engine so the UD2-gap check can see
  // the actual shadow frames.
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  for (const core::KernelViewConfig& config :
       harness::profile_all_apps(iterations)) {
    if (!only_apps.empty() &&
        std::find(only_apps.begin(), only_apps.end(), config.app_name) ==
            only_apps.end()) {
      continue;
    }
    u32 id = engine.load_view(config);
    analysis::LintReport report =
        analysis::lint_view(graph, hazards, config, engine.view(id),
                            &sys.hv().machine().host());
    std::printf("%s\n", report.render().c_str());
    failed = failed || report.failed();
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = argc > 1 ? argv[1] : "lint";
  int first = 2;
  if (cmd == "-n" || cmd.rfind("--", 0) == 0) {  // bare `fclint --flag ...`
    cmd = "lint";
    first = 1;
  }
  if (cmd == "graph") return cmd_graph();
  if (cmd == "hazards") return cmd_hazards();
  if (cmd != "lint") usage();

  u32 iterations = 20;
  std::string baseline, update, trace_out;
  std::vector<std::string> apps;
  for (int i = first; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-n") && i + 1 < argc) {
      iterations = static_cast<u32>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
      baseline = argv[++i];
    } else if (!std::strcmp(argv[i], "--update-baseline") && i + 1 < argc) {
      update = argv[++i];
    } else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (!std::strcmp(argv[i], "--log-level") && i + 1 < argc) {
      auto level = parse_log_level(argv[++i]);
      if (!level) {
        std::fprintf(stderr, "fclint: unknown log level '%s'\n", argv[i]);
        return 2;
      }
      set_log_level(*level);
    } else if (argv[i][0] == '-') {
      usage();
    } else {
      apps.emplace_back(argv[i]);
    }
  }
  if (!trace_out.empty()) obs::recorder().start();
  int rc = cmd_lint(iterations, baseline, update, apps);
  if (!trace_out.empty()) {
    obs::recorder().stop();
    std::ofstream out(trace_out);
    out << obs::chrome_trace_json(obs::recorder());
    std::printf("wrote %s (%llu events)\n", trace_out.c_str(),
                static_cast<unsigned long long>(obs::recorder().size()));
  }
  return rc;
}
