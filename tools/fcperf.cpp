// fcperf — perf-regression gate over the repo's bench/telemetry JSON.
//
//   fcperf check <baseline.json> <current.json> --rules RULES [--name LABEL]
//                [--verbose]
//       Flatten both JSON documents into dotted metric paths
//       (subtests[3].insns, metrics.counters.block_cache.insn_hits, ...),
//       match every path against the rules file, and fail (exit 1) when any
//       non-ignored metric violates its rule. Paths matched by a non-ignore
//       rule must exist in BOTH documents — a vanished or newly-appeared
//       gated metric is itself a regression (silently dropping a gate is
//       how perf rot ships).
//   fcperf selftest
//       In-process contract test: a doctored "current" document with an
//       injected regression must trip the gate, and the clean document must
//       pass. Wired into ctest as `perf_gate_selftest`; ci.sh's perf-gate
//       tier also injects a synthetic regression end-to-end.
//
// Rules file: one rule per line, first match wins, `#` comments.
//
//   ignore <pattern>        never check (wall-clock noise, labels)
//   exact <pattern>         byte-for-byte value equality (deterministic
//                           metrics: instruction counts, frame counts)
//   near <tol> <pattern>    |cur - base| <= tol * max(|base|, 1)
//   min <tol> <pattern>     cur >= base * (1 - tol)   (throughput-like:
//                           only a drop is a regression)
//   max <tol> <pattern>     cur <= base * (1 + tol)   (cost-like: only
//                           growth is a regression)
//
// `<tol>` is a fraction (0.10 = 10%). Patterns are glob-ish: `*` matches
// any run of characters (including `.` and digits), everything else is
// literal — `subtests[*].insns` gates every subtest's instruction count.
// Unmatched paths are ignored (and counted in the summary), so a rules
// file states its gates explicitly rather than inheriting every field a
// bench happens to emit.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON ----
// Minimal recursive-descent parser: just enough for the repo's own bench /
// telemetry exports (objects, arrays, numbers, strings, bools, null). On
// any syntax error the whole check fails — a gate that half-parses its
// input is worse than one that refuses it.

struct Leaf {
  enum Kind { kNumber, kString, kBool, kNull } kind = kNull;
  double num = 0.0;
  std::string str;  // kString text / kBool "true"/"false" / kNull "null"

  bool operator==(const Leaf& other) const {
    if (kind != other.kind) return false;
    if (kind == kNumber) return num == other.num;
    return str == other.str;
  }
  std::string render() const {
    if (kind != kNumber) return str;
    char buf[64];
    if (num == static_cast<double>(static_cast<long long>(num)))
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(num));
    else
      std::snprintf(buf, sizeof buf, "%g", num);
    return buf;
  }
};

using FlatDoc = std::map<std::string, Leaf>;

class Parser {
 public:
  Parser(const std::string& text, FlatDoc* out) : text_(text), out_(out) {}

  bool parse() {
    skip_ws();
    if (!parse_value("")) return false;
    skip_ws();
    return pos_ == text_.size();
  }
  std::size_t error_offset() const { return pos_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool literal(const char* word) {
    std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            // The repo's exporters never emit \u escapes; keep them
            // opaque rather than mis-decoding.
            if (pos_ + 4 > text_.size()) return false;
            out->append("\\u").append(text_, pos_, 4);
            pos_ += 4;
            break;
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      Leaf leaf;
      leaf.kind = Leaf::kString;
      if (!parse_string(&leaf.str)) return false;
      emit(path, leaf);
      return true;
    }
    if (literal("true")) return emit_word(path, Leaf::kBool, "true", 1.0);
    if (literal("false")) return emit_word(path, Leaf::kBool, "false", 0.0);
    if (literal("null")) return emit_word(path, Leaf::kNull, "null", 0.0);
    // Number.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double value = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    Leaf leaf;
    leaf.kind = Leaf::kNumber;
    leaf.num = value;
    emit(path, leaf);
    return true;
  }

  bool parse_object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      std::string child = path.empty() ? key : path + "." + key;
      if (!parse_value(child)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    std::size_t index = 0;
    while (true) {
      char idx[32];
      std::snprintf(idx, sizeof idx, "[%zu]", index++);
      if (!parse_value(path + idx)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  void emit(const std::string& path, const Leaf& leaf) {
    (*out_)[path] = leaf;
  }
  bool emit_word(const std::string& path, Leaf::Kind kind, const char* word,
                 double num) {
    Leaf leaf;
    leaf.kind = kind;
    leaf.str = word;
    leaf.num = num;
    emit(path, leaf);
    return true;
  }

  const std::string& text_;
  FlatDoc* out_;
  std::size_t pos_ = 0;
};

bool flatten_json(const std::string& text, FlatDoc* out, std::string* error) {
  Parser parser(text, out);
  if (parser.parse()) return true;
  if (error != nullptr) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "syntax error at offset %zu",
                  parser.error_offset());
    *error = buf;
  }
  return false;
}

// --------------------------------------------------------------- rules ----

struct Rule {
  enum Op { kIgnore, kExact, kNear, kMin, kMax } op = kIgnore;
  double tol = 0.0;
  std::string pattern;
};

/// `*` matches any run of characters; everything else literal.
bool glob_match(const std::string& pattern, const std::string& text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star = p++;  // remember; initially match zero characters
      star_t = t;
    } else if (p < pattern.size() && pattern[p] == text[t]) {
      ++p, ++t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool parse_rules(const std::string& text, std::vector<Rule>* out,
                 std::string* error) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  auto fail = [&](const char* why) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "rules line %zu: %s", line_no, why);
    *error = buf;
    return false;
  };
  while (start <= text.size()) {
    std::size_t eol = text.find('\n', start);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(start, eol - start);
    start = eol + 1;
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> words;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      std::size_t w = i;
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      if (i > w) words.push_back(line.substr(w, i - w));
    }
    if (words.empty()) continue;
    Rule rule;
    if (words[0] == "ignore") rule.op = Rule::kIgnore;
    else if (words[0] == "exact") rule.op = Rule::kExact;
    else if (words[0] == "near") rule.op = Rule::kNear;
    else if (words[0] == "min") rule.op = Rule::kMin;
    else if (words[0] == "max") rule.op = Rule::kMax;
    else return fail("unknown op (want ignore/exact/near/min/max)");
    bool has_tol = rule.op == Rule::kNear || rule.op == Rule::kMin ||
                   rule.op == Rule::kMax;
    std::size_t want = has_tol ? 3u : 2u;
    if (words.size() != want) return fail("wrong word count");
    if (has_tol) {
      char* end = nullptr;
      rule.tol = std::strtod(words[1].c_str(), &end);
      if (end == nullptr || *end != '\0' || rule.tol < 0.0)
        return fail("bad tolerance");
    }
    rule.pattern = words.back();
    out->push_back(rule);
  }
  return true;
}

const Rule* match_rule(const std::vector<Rule>& rules,
                       const std::string& path) {
  for (const Rule& rule : rules)
    if (glob_match(rule.pattern, path)) return &rule;
  return nullptr;
}

// --------------------------------------------------------------- check ----

struct CheckStats {
  std::size_t checked = 0;
  std::size_t failed = 0;
  std::size_t ignored = 0;
  std::size_t unmatched = 0;
};

const char* op_name(Rule::Op op) {
  switch (op) {
    case Rule::kIgnore: return "ignore";
    case Rule::kExact: return "exact";
    case Rule::kNear: return "near";
    case Rule::kMin: return "min";
    case Rule::kMax: return "max";
  }
  return "?";
}

/// Core gate: every union path matched by a non-ignore rule is checked.
CheckStats check_docs(const FlatDoc& baseline, const FlatDoc& current,
                      const std::vector<Rule>& rules, const char* label,
                      bool verbose) {
  CheckStats stats;
  auto report = [&](const std::string& path, const Rule& rule,
                    const char* verdict, const std::string& detail) {
    bool fail = std::strcmp(verdict, "ok") != 0;
    if (fail) ++stats.failed;
    if (!fail && !verbose) return;
    std::string rule_text = op_name(rule.op);
    if (rule.op == Rule::kNear || rule.op == Rule::kMin ||
        rule.op == Rule::kMax) {
      char tol[32];
      std::snprintf(tol, sizeof tol, " %g", rule.tol);
      rule_text += tol;
    }
    std::printf("%s %s: %s %s (%s)%s%s\n", fail ? "FAIL" : "  ok", label,
                path.c_str(), detail.c_str(), rule_text.c_str(),
                fail ? ": " : "", fail ? verdict : "");
  };

  // Union of paths, in map order (deterministic output).
  auto bi = baseline.begin();
  auto ci = current.begin();
  while (bi != baseline.end() || ci != current.end()) {
    const std::string* path;
    const Leaf* base = nullptr;
    const Leaf* cur = nullptr;
    if (ci == current.end() ||
        (bi != baseline.end() && bi->first < ci->first)) {
      path = &bi->first;
      base = &bi->second;
      ++bi;
    } else if (bi == baseline.end() || ci->first < bi->first) {
      path = &ci->first;
      cur = &ci->second;
      ++ci;
    } else {
      path = &bi->first;
      base = &bi->second;
      cur = &ci->second;
      ++bi, ++ci;
    }
    const Rule* rule = match_rule(rules, *path);
    if (rule == nullptr) {
      ++stats.unmatched;
      continue;
    }
    if (rule->op == Rule::kIgnore) {
      ++stats.ignored;
      continue;
    }
    ++stats.checked;
    if (base == nullptr) {
      report(*path, *rule, "gated metric absent from baseline",
             "cur=" + cur->render());
      continue;
    }
    if (cur == nullptr) {
      report(*path, *rule, "gated metric vanished from current run",
             "base=" + base->render());
      continue;
    }
    std::string detail = "base=" + base->render() + " cur=" + cur->render();
    if (base->kind != cur->kind) {
      report(*path, *rule, "type changed", detail);
      continue;
    }
    if (base->kind != Leaf::kNumber) {
      // Non-numeric leaves only support (and always get) exact equality.
      report(*path, *rule, *base == *cur ? "ok" : "value changed", detail);
      continue;
    }
    double b = base->num, c = cur->num;
    bool ok = false;
    switch (rule->op) {
      case Rule::kExact: ok = b == c; break;
      case Rule::kNear:
        ok = std::fabs(c - b) <= rule->tol * std::fmax(std::fabs(b), 1.0);
        break;
      case Rule::kMin: ok = c >= b * (1.0 - rule->tol); break;
      case Rule::kMax: ok = c <= b * (1.0 + rule->tol); break;
      case Rule::kIgnore: break;  // unreachable
    }
    report(*path, *rule, ok ? "ok" : "regression", detail);
  }
  return stats;
}

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fcperf: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

int cmd_check(const std::string& baseline_path,
              const std::string& current_path, const std::string& rules_path,
              const std::string& label, bool verbose) {
  std::string error;
  FlatDoc baseline, current;
  std::vector<Rule> rules;
  if (!flatten_json(read_file_or_die(baseline_path), &baseline, &error)) {
    std::fprintf(stderr, "fcperf: %s: %s\n", baseline_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!flatten_json(read_file_or_die(current_path), &current, &error)) {
    std::fprintf(stderr, "fcperf: %s: %s\n", current_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!parse_rules(read_file_or_die(rules_path), &rules, &error)) {
    std::fprintf(stderr, "fcperf: %s: %s\n", rules_path.c_str(),
                 error.c_str());
    return 2;
  }
  const char* name = label.empty() ? current_path.c_str() : label.c_str();
  CheckStats stats = check_docs(baseline, current, rules, name, verbose);
  std::printf(
      "%s: %zu checked, %zu failed (%zu ignored, %zu unmatched paths)\n",
      name, stats.checked, stats.failed, stats.ignored, stats.unmatched);
  return stats.failed == 0 ? 0 : 1;
}

// ------------------------------------------------------------- selftest ----

int cmd_selftest() {
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("%s: %s\n", ok ? "  ok" : "FAIL", what);
    if (!ok) ++failures;
  };

  // Glob semantics.
  expect(glob_match("subtests[*].insns", "subtests[3].insns"),
         "glob matches array wildcard");
  expect(glob_match("metrics.counters.*", "metrics.counters.bc.hits"),
         "glob * spans dots");
  expect(!glob_match("subtests[*].insns", "subtests[3].name"),
         "glob rejects other field");
  expect(glob_match("*", "anything.at[0].all"), "bare * matches everything");

  const char* kBaseline =
      "{\"geomean\": 2.130, \"insns\": 311520000, \"wall\": 1.25,"
      " \"subtests\": [{\"name\": \"a\", \"rate\": 100.0},"
      " {\"name\": \"b\", \"rate\": 200.0}]}";
  const char* kRules =
      "# gate file for the selftest\n"
      "ignore wall\n"
      "min 0.10 geomean\n"
      "exact insns\n"
      "exact subtests[*].name\n"
      "min 0.20 subtests[*].rate\n";
  FlatDoc base;
  std::vector<Rule> rules;
  std::string error;
  expect(flatten_json(kBaseline, &base, &error), "baseline parses");
  expect(parse_rules(kRules, &rules, &error), "rules parse");
  expect(base.size() == 7, "baseline flattens to 7 leaves");

  auto run = [&](const char* json, const char* what,
                 std::size_t want_failed) {
    FlatDoc cur;
    std::string err;
    if (!flatten_json(json, &cur, &err)) {
      expect(false, what);
      return;
    }
    CheckStats stats = check_docs(base, cur, rules, "selftest", false);
    expect(stats.failed == want_failed, what);
  };

  // Identical document passes; wall-clock drift is ignored.
  run("{\"geomean\": 2.130, \"insns\": 311520000, \"wall\": 9.99,"
      " \"subtests\": [{\"name\": \"a\", \"rate\": 100.0},"
      " {\"name\": \"b\", \"rate\": 200.0}]}",
      "clean run passes the gate", 0);
  // Throughput inside tolerance passes, above baseline always passes.
  run("{\"geomean\": 1.95, \"insns\": 311520000, \"wall\": 1.0,"
      " \"subtests\": [{\"name\": \"a\", \"rate\": 85.0},"
      " {\"name\": \"b\", \"rate\": 900.0}]}",
      "in-tolerance drift passes", 0);
  // Injected regression: geomean collapses below min 0.10.
  run("{\"geomean\": 1.50, \"insns\": 311520000, \"wall\": 1.0,"
      " \"subtests\": [{\"name\": \"a\", \"rate\": 100.0},"
      " {\"name\": \"b\", \"rate\": 200.0}]}",
      "injected geomean regression trips the gate", 1);
  // Determinism break: an exact-gated counter moved.
  run("{\"geomean\": 2.130, \"insns\": 311520001, \"wall\": 1.0,"
      " \"subtests\": [{\"name\": \"a\", \"rate\": 100.0},"
      " {\"name\": \"b\", \"rate\": 200.0}]}",
      "exact-counter drift trips the gate", 1);
  // A gated metric vanishing is a failure, not a silent skip.
  run("{\"geomean\": 2.130, \"wall\": 1.0,"
      " \"subtests\": [{\"name\": \"a\", \"rate\": 100.0},"
      " {\"name\": \"b\", \"rate\": 200.0}]}",
      "vanished gated metric trips the gate", 1);
  // A new subtest appears: its gated fields are absent from baseline.
  run("{\"geomean\": 2.130, \"insns\": 311520000, \"wall\": 1.0,"
      " \"subtests\": [{\"name\": \"a\", \"rate\": 100.0},"
      " {\"name\": \"b\", \"rate\": 200.0},"
      " {\"name\": \"c\", \"rate\": 50.0}]}",
      "new gated subtest requires a baseline refresh", 2);
  // Renamed subtest: exact string gate catches it.
  run("{\"geomean\": 2.130, \"insns\": 311520000, \"wall\": 1.0,"
      " \"subtests\": [{\"name\": \"a2\", \"rate\": 100.0},"
      " {\"name\": \"b\", \"rate\": 200.0}]}",
      "renamed subtest trips the exact name gate", 1);

  if (failures == 0) std::printf("OK: perf gate selftest\n");
  return failures == 0 ? 0 : 1;
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fcperf <command> [args]\n"
      "  check <baseline.json> <current.json> --rules <rules> "
      "[--name label] [--verbose]\n"
      "  selftest\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];
  if (cmd == "selftest") return cmd_selftest();
  if (cmd != "check") usage();

  std::vector<std::string> positional;
  std::string rules_path, label;
  bool verbose = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--rules") && i + 1 < argc) {
      rules_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--name") && i + 1 < argc) {
      label = argv[++i];
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() != 2 || rules_path.empty()) usage();
  return cmd_check(positional[0], positional[1], rules_path, label, verbose);
}
