// fcsh — the FACE-CHANGE administration shell.
//
// Drives the complete workflow from the command line, with kernel-view and
// behaviour profiles as ordinary files (the artifacts an administrator
// would ship from a profiling box to production):
//
//   fcsh apps                                list the modelled applications
//   fcsh attacks                             list the Table II malware corpus
//   fcsh profile <app> [-n ITER] [-o FILE]   profiling phase → view config
//   fcsh behavior <app> [-n ITER] [-o FILE]  behavioural profile (§V-A ext.)
//   fcsh inspect <FILE>                      summarize a view config file
//   fcsh enforce <app> -v FILE [-n ITER]     runtime phase: run under a view
//   fcsh matrix [-n ITER]                    Table I similarity matrix
//   fcsh attack <name> [--union]             stage one attack end to end
//   fcsh integrity <attack>                  §V-B data-integrity scan demo
//   fcsh fleet [--vms N] [--jobs N]          multi-VM COW fleet run
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/closure.hpp"
#include "core/behavior.hpp"
#include "core/integrity.hpp"
#include "core/similarity.hpp"
#include "fleet/fleet.hpp"
#include "harness/harness.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "support/logging.hpp"

using namespace fc;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fcsh <command> [args]\n"
      "  apps | attacks\n"
      "  profile  <app> [-n iterations] [-o view.cfg]\n"
      "  behavior <app> [-n iterations] [-o behavior.cfg]\n"
      "  inspect  <view.cfg>\n"
      "  enforce  <app> -v view.cfg [-n iterations] [--no-block-cache]\n"
      "           [--no-trace-cache] [--trace-hot-threshold N]\n"
      "           [--closure]  (expand the view by static call-graph "
      "closure)\n"
      "  matrix   [-n iterations]\n"
      "  attack   <name> [--union]\n"
      "  integrity <attack-name>\n"
      "  fleet    [--vms N] [--jobs N] [-n iterations] [--apps a,b,c]\n"
      "           [--no-share] [-o report.json] [--trace-out fleet.fctr]\n"
      "global flags:\n"
      "  --log-level LEVEL   trace|debug|info|warn|error|off (also the\n"
      "                      FC_LOG_LEVEL environment variable)\n"
      "  --trace-out FILE    record the run in the flight recorder and\n"
      "                      write a Chrome trace JSON (enforce/attack)\n");
  std::exit(2);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fcsh: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fcsh: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << contents;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), contents.size());
}

struct Options {
  u32 iterations = 20;
  std::string out;
  std::string view_file;
  std::string trace_out;  // Chrome trace JSON destination ("" = no capture)
  bool union_view = false;
  bool block_cache = true;
  bool trace_cache = true;
  u32 trace_hot_threshold = cpu::TraceCache::kDefaultHotThreshold;
  bool closure = false;  // enforce: expand the view by static closure
  u32 vms = 8;           // fleet: guest count
  u32 jobs = 1;          // fleet: worker threads (0 = one per VM)
  std::vector<std::string> fleet_apps;  // fleet: --apps subset
  bool share = true;     // fleet: --no-share = per-VM rebuild baseline
};

Options parse_flags(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-n") && i + 1 < argc) {
      options.iterations = static_cast<u32>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      options.out = argv[++i];
    } else if (!std::strcmp(argv[i], "-v") && i + 1 < argc) {
      options.view_file = argv[++i];
    } else if (!std::strcmp(argv[i], "--union")) {
      options.union_view = true;
    } else if (!std::strcmp(argv[i], "--no-block-cache")) {
      options.block_cache = false;
    } else if (!std::strcmp(argv[i], "--no-trace-cache")) {
      options.trace_cache = false;
    } else if (!std::strcmp(argv[i], "--trace-hot-threshold") && i + 1 < argc) {
      options.trace_hot_threshold = static_cast<u32>(std::atoi(argv[++i]));
      if (options.trace_hot_threshold == 0) {
        std::fprintf(stderr, "fcsh: --trace-hot-threshold must be >= 1\n");
        std::exit(2);
      }
    } else if (!std::strcmp(argv[i], "--closure")) {
      options.closure = true;
    } else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
      options.trace_out = argv[++i];
    } else if (!std::strcmp(argv[i], "--vms") && i + 1 < argc) {
      options.vms = static_cast<u32>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      options.jobs = static_cast<u32>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--no-share")) {
      options.share = false;
    } else if (!std::strcmp(argv[i], "--apps") && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t at = 0;
      while (at <= list.size()) {
        std::size_t comma = list.find(',', at);
        if (comma == std::string::npos) comma = list.size();
        if (comma > at) options.fleet_apps.push_back(list.substr(at, comma - at));
        at = comma + 1;
      }
    } else if (!std::strcmp(argv[i], "--log-level") && i + 1 < argc) {
      auto level = parse_log_level(argv[++i]);
      if (!level) {
        std::fprintf(stderr, "fcsh: unknown log level '%s'\n", argv[i]);
        std::exit(2);
      }
      set_log_level(*level);
    } else {
      usage();
    }
  }
  return options;
}

int cmd_apps() {
  for (const std::string& app : apps::all_app_names())
    std::printf("%s\n", app.c_str());
  return 0;
}

int cmd_attacks() {
  std::printf("%-14s %-46s %-10s %s\n", "name", "infection", "victim",
              "payload");
  for (const auto& attack : attacks::make_all_attacks())
    std::printf("%-14s %-46s %-10s %s\n", attack->name().c_str(),
                attack->infection_method().c_str(), attack->victim().c_str(),
                attack->payload().c_str());
  return 0;
}

int cmd_profile(const std::string& app, const Options& options) {
  std::printf("profiling %s (%u iterations)...\n", app.c_str(),
              options.iterations);
  core::KernelViewConfig config =
      harness::profile_app(app, options.iterations);
  std::printf("kernel view: %llu KB, %zu base ranges, %zu module(s)\n",
              static_cast<unsigned long long>(config.size_bytes() >> 10),
              config.base.len(), config.modules.size());
  spit(options.out.empty() ? app + ".view" : options.out,
       config.serialize());
  return 0;
}

int cmd_behavior(const std::string& app, const Options& options) {
  harness::GuestSystem sys;
  core::BehaviorProfiler profiler(sys.hv(), sys.os().kernel());
  profiler.add_target(app);
  profiler.attach();
  apps::AppScenario scenario = apps::make_app(app, options.iterations);
  u32 pid = sys.os().spawn(app, scenario.model);
  scenario.install_environment(sys.os());
  sys.run_until_exit(pid, 1'500'000'000ull);
  profiler.detach();
  core::BehaviorProfile profile = profiler.export_profile(app);
  std::printf("behaviour profile: %zu syscalls, %zu constrained argument "
              "sets\n",
              profile.syscalls.size(), profile.constrained_args.size());
  spit(options.out.empty() ? app + ".behavior" : options.out,
       profile.serialize());
  return 0;
}

int cmd_inspect(const std::string& path) {
  core::KernelViewConfig config = core::KernelViewConfig::parse(slurp(path));
  std::printf("app:         %s\n", config.app_name.c_str());
  std::printf("total size:  %llu KB\n",
              static_cast<unsigned long long>(config.size_bytes() >> 10));
  std::printf("base ranges: %zu (%llu KB)\n", config.base.len(),
              static_cast<unsigned long long>(config.base.size_bytes() >> 10));
  for (const auto& [name, ranges] : config.modules)
    std::printf("module %-16s %zu ranges (%llu KB)\n", name.c_str(),
                ranges.len(),
                static_cast<unsigned long long>(ranges.size_bytes() >> 10));
  return 0;
}

int cmd_enforce(const std::string& app, const Options& options) {
  if (options.view_file.empty()) usage();
  core::KernelViewConfig config =
      core::KernelViewConfig::parse(slurp(options.view_file));
  config.app_name = app;

  harness::GuestSystem sys;
  sys.vcpu().set_block_cache_enabled(options.block_cache);
  // The trace tier stacks on the block cache; disabling the latter disables
  // both regardless of the trace flag.
  sys.vcpu().set_trace_cache_enabled(options.block_cache && options.trace_cache);
  sys.vcpu().set_trace_hot_threshold(options.trace_hot_threshold);
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();

  analysis::CallGraph graph = harness::build_call_graph(sys);
  if (options.closure) {
    analysis::ClosureResult closure = analysis::profile_closure(graph, config);
    std::printf("closure: %zu seed functions +%zu statically-reachable "
                "(%llu KB added)\n",
                closure.seed_functions, closure.added.size(),
                static_cast<unsigned long long>(closure.added_bytes >> 10));
    config = std::move(closure.expanded);
  }
  if (!options.trace_out.empty()) obs::recorder().start();
  u32 view_id = engine.load_view(config);
  engine.bind(app, view_id);
  engine.install_static_audit(
      harness::build_static_audit(graph, {{view_id, config}}));
  apps::AppScenario scenario = apps::make_app(app, options.iterations);
  u32 pid = sys.os().spawn(app, scenario.model);
  scenario.install_environment(sys.os());
  hv::RunOutcome outcome = sys.run_until_exit(pid, 2'000'000'000ull);

  std::printf("outcome: %s\n",
              outcome == hv::RunOutcome::kGuestFault ? "GUEST FAULT"
                                                     : "completed");
  obs::metrics().gauge_set("os.event_queue_max_depth",
                           sys.os().events().max_depth());
  std::printf("%s\n", engine.render_run_report().c_str());
  if (!options.trace_out.empty()) {
    obs::recorder().stop();
    spit(options.trace_out, obs::chrome_trace_json(obs::recorder()));
    std::printf("trace: %llu events recorded (%llu dropped)\n",
                static_cast<unsigned long long>(obs::recorder().total_emitted()),
                static_cast<unsigned long long>(obs::recorder().dropped()));
  }
  std::printf("recovery log (%zu events):\n", engine.recovery_log().size());
  for (const core::RecoveryEvent& ev : engine.recovery_log().events())
    std::printf("  %s\n", ev.headline().c_str());
  return outcome == hv::RunOutcome::kGuestFault ? 1 : 0;
}

int cmd_matrix(const Options& options) {
  std::vector<core::KernelViewConfig> configs;
  for (const std::string& app : apps::all_app_names()) {
    std::printf("profiling %-8s...\r", app.c_str());
    std::fflush(stdout);
    configs.push_back(harness::profile_app(app, options.iterations));
  }
  std::printf("%s\n", core::compute_similarity(configs).render().c_str());
  return 0;
}

int cmd_attack(const std::string& name, const Options& options) {
  auto attack = attacks::make_attack(name);
  harness::AttackRunOptions run_options;
  run_options.use_union_view = options.union_view;
  std::printf("staging %s against %s under the %s view...\n",
              attack->name().c_str(), attack->victim().c_str(),
              options.union_view ? "system-wide union" : "per-application");
  if (!options.trace_out.empty()) obs::recorder().start();
  harness::AttackRunResult result = harness::run_attack(*attack, run_options);
  for (const std::string& ev : result.rendered_events)
    std::printf("%s\n", ev.c_str());
  std::printf("detected: %s (%zu recovery events)\n",
              result.detected ? "YES" : "no", result.recovery_events);
  if (!options.trace_out.empty()) {
    obs::recorder().stop();
    spit(options.trace_out, obs::chrome_trace_json(obs::recorder()));
  }
  return 0;
}

int cmd_integrity(const std::string& attack_name) {
  harness::GuestSystem sys;
  core::KernelIntegrityMonitor monitor(sys.hv(), sys.os().kernel());
  monitor.take_baseline();
  monitor.set_module_truth_source([&sys] {
    std::vector<hv::ModuleInfo> truth;
    for (const char* name :
         {"e1000", "ipsecs_kbeast_v1", "sebek", "adore-ng"}) {
      if (auto mod = sys.os().loaded_module(name)) truth.push_back(*mod);
    }
    return truth;
  });

  auto attack = attacks::make_attack(attack_name);
  if (!attack->is_rootkit()) {
    std::fprintf(stderr, "fcsh: integrity scanning targets rootkits\n");
    return 2;
  }
  std::printf("installing %s, then scanning...\n", attack->name().c_str());
  attack->deploy(sys.os(), 0);
  sys.run_for(40'000'000);

  auto violations = monitor.check();
  for (const auto& v : violations) std::printf("%s\n", v.render().c_str());
  for (const auto& mod : monitor.find_hidden_modules())
    std::printf("hidden module: %s @ 0x%08x (%u bytes) — present in memory, "
                "absent from the guest's module list\n",
                mod.name.c_str(), mod.base, mod.size);
  std::printf("%zu table violation(s)\n", violations.size());
  return violations.empty() ? 1 : 0;
}

int cmd_fleet(const Options& options) {
  harness::SharedImageOptions img_options;
  img_options.apps = options.fleet_apps;
  img_options.profile_iterations = options.iterations;
  std::printf("building shared image (%s)...\n",
              options.fleet_apps.empty()
                  ? "all apps"
                  : std::to_string(options.fleet_apps.size()).append(" apps")
                        .c_str());
  auto image = harness::build_shared_image(img_options);
  std::printf("shared image: %u store pages, %zu views, %zu prebuilt "
              "switches\n",
              image->store.page_count(), image->views.size(),
              image->switches.size());

  fleet::FleetOptions fleet_options;
  fleet_options.vms = options.vms;
  fleet_options.jobs = options.jobs;
  fleet_options.iterations = options.iterations;
  fleet_options.apps = options.fleet_apps;
  fleet_options.share_image = options.share;
  fleet_options.capture_traces = !options.trace_out.empty();
  fleet::FleetRunner runner(*image, fleet_options);
  fleet::FleetReport report = runner.run();

  std::printf("%-4s %-10s %12s %12s %6s %8s %9s %6s\n", "vm", "app", "insns",
              "cycles", "recov", "switches", "priv/tot", "fault");
  for (const fleet::VmResult& vm : report.vms)
    std::printf("%-4u %-10s %12llu %12llu %6llu %8llu %4u/%-4u %6s\n", vm.vm,
                vm.app.c_str(), static_cast<unsigned long long>(vm.instructions),
                static_cast<unsigned long long>(vm.cycles),
                static_cast<unsigned long long>(vm.recoveries),
                static_cast<unsigned long long>(vm.view_switches),
                vm.private_frames, vm.total_frames, vm.fault ? "FAULT" : "-");
  std::printf("fleet: %zu VMs, %llu insns total, resident %llu frames "
              "(%llu shared + per-VM private), %.2fs wall "
              "(%.0f aggregate insns/sec)\n",
              report.vms.size(),
              static_cast<unsigned long long>(report.total_instructions()),
              static_cast<unsigned long long>(report.resident_frames()),
              static_cast<unsigned long long>(report.shared_store_pages),
              report.wall_seconds,
              report.wall_seconds > 0
                  ? static_cast<double>(report.total_instructions()) /
                        report.wall_seconds
                  : 0.0);
  if (!options.out.empty()) spit(options.out, report.to_json());
  if (!options.trace_out.empty()) {
    std::vector<u8> merged = report.merged_trace();
    std::ofstream out(options.trace_out, std::ios::binary);
    out.write(reinterpret_cast<const char*>(merged.data()),
              static_cast<std::streamsize>(merged.size()));
    std::printf("wrote %s (%zu bytes, FCFL container)\n",
                options.trace_out.c_str(), merged.size());
  }
  bool any_fault = false;
  for (const fleet::VmResult& vm : report.vms) any_fault |= vm.fault;
  return any_fault ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];
  if (cmd == "apps") return cmd_apps();
  if (cmd == "attacks") return cmd_attacks();
  if (cmd == "matrix") return cmd_matrix(parse_flags(argc, argv, 2));
  if (cmd == "fleet") return cmd_fleet(parse_flags(argc, argv, 2));
  if (argc < 3) usage();
  std::string arg = argv[2];
  Options options = parse_flags(argc, argv, 3);
  if (cmd == "profile") return cmd_profile(arg, options);
  if (cmd == "behavior") return cmd_behavior(arg, options);
  if (cmd == "inspect") return cmd_inspect(arg);
  if (cmd == "enforce") return cmd_enforce(arg, options);
  if (cmd == "attack") return cmd_attack(arg, options);
  if (cmd == "integrity") return cmd_integrity(arg);
  usage();
}
