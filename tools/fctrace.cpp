// fctrace — flight-recorder inspection CLI.
//
//   fctrace record [-n ITER] [--apps a,b,..] [--ring N] [--budget CYCLES]
//                  [-o FILE] [--chrome FILE] [--metrics FILE] [--vms N]
//                  [--jobs N]
//       Run the multi-app enforcement scenario (default: all 12 modelled
//       applications concurrently under their own views) with the flight
//       recorder on; write the binary event stream (default: trace.fctrace).
//       With --vms N, run an N-guest COW fleet instead and write the merged
//       per-VM container (FCFL: one FCTR stream per VM, in VM-id order).
//   fctrace dump FILE [--kind NAME] [--view N] [--vm N] [--limit N]
//       Print events, optionally filtered by kind or view id. FCFL
//       containers dump every VM stream (or just --vm N).
//   fctrace aggregate FILE
//       Per-kind event counts and cycle totals; for FCFL containers, adds a
//       per-VM breakdown column and a per-VM summary table. Recordings that
//       carry prof_sample events additionally get a per-view cycle-share
//       table (weights summed from the sampling profiler's events).
//   fctrace flame [-n ITER] [--apps a,b,..] [--budget CYCLES]
//                 [--period CYCLES] [-o FILE] [--json FILE] [--top N]
//       Run the enforcement scenario with the deterministic sampling
//       profiler attached; write collapsed-stack lines (flamegraph.pl /
//       speedscope format) and print the top buckets by cycle weight.
//       Cycle-driven sampling: the outputs are byte-identical across runs.
//   fctrace timeline [--vms N] [--jobs N] [-n ITER] [--apps a,b,..]
//                    [--budget CYCLES] [--period CYCLES]
//                    [--interval CYCLES] [-o FILE] [--column NAME]
//       Run a COW fleet with the telemetry plane attached to every VM;
//       write the fleet timeline rollup (per-interval p50/p99-across-VMs
//       for every metric column, plus merged switch-cost percentiles) as
//       JSON and render one column as a table. Byte-identical for any
//       --jobs value.
//   fctrace chrome FILE [-o OUT.json] [--vm N]
//       Convert a recording to Chrome trace_event JSON (Perfetto-loadable).
//       FCFL containers need --vm to select one stream.
//   fctrace diff A B
//       Byte-level and event-level comparison of two recordings.
//   fctrace selftest
//       Record the same scenario twice in-process and verify the two
//       serialized streams are byte-identical (the determinism contract).
//       Wired into ctest as `trace_determinism`.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "harness/harness.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/logging.hpp"

using namespace fc;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: fctrace <command> [args]\n"
      "  record [-n iterations] [--apps a,b,..] [--ring events]\n"
      "         [--budget cycles] [-o trace.fctrace] [--chrome out.json]\n"
      "         [--metrics out.json] [--vms n] [--jobs n] [--period cycles]\n"
      "  dump <trace.fctrace> [--kind name] [--view id] [--vm id] [--limit n]\n"
      "  aggregate <trace.fctrace>\n"
      "  flame [-n iterations] [--apps a,b,..] [--budget cycles]\n"
      "        [--period cycles] [-o flame.collapsed] [--json out.json]\n"
      "        [--top n]\n"
      "  timeline [--vms n] [--jobs n] [-n iterations] [--apps a,b,..]\n"
      "           [--budget cycles] [--period cycles] [--interval cycles]\n"
      "           [-o timeline.json] [--column name]\n"
      "  chrome <trace.fctrace> [-o out.json] [--vm id]\n"
      "  diff <a.fctrace> <b.fctrace>\n"
      "  selftest\n"
      "flags: --log-level LEVEL (or FC_LOG_LEVEL env)\n");
  std::exit(2);
}

std::vector<u8> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fctrace: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  return std::vector<u8>(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const void* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "fctrace: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), size);
}

void parse_or_die(const std::vector<u8>& bytes, obs::TraceHeader* header,
                  std::vector<obs::TraceEvent>* events) {
  if (!obs::parse_trace(bytes, header, events)) {
    std::fprintf(stderr, "fctrace: not a valid FCTR stream\n");
    std::exit(1);
  }
}

struct RecordOptions {
  u32 iterations = 4;
  u32 ring = obs::Recorder::kDefaultCapacity;
  Cycles budget = 3'000'000'000ull;
  std::vector<std::string> apps;  // empty = all
  std::string out = "trace.fctrace";
  std::string chrome_out;
  std::string metrics_out;
  u32 vms = 0;   // > 0: record a COW fleet, write an FCFL container
  u32 jobs = 1;  // fleet worker threads
  /// Sampling-profiler period for the recorded run; 0 detaches the
  /// telemetry plane. `record` defaults coarse (64 Ki cycles) so
  /// prof_sample events season the stream without evicting the ring;
  /// `flame` overrides to the engine default for real attribution.
  Cycles sample_period = 65536;
  Cycles timeline_interval = 0;  // != 0: also capture time-series rows
};

/// Run the enforcement scenario with the recorder capturing and return the
/// serialized stream. Profiling happens *before* capture starts, so the
/// stream contains exactly the enforcement run — which is deterministic,
/// making the result bit-reproducible.
std::vector<u8> record_scenario(const RecordOptions& options,
                                std::string* report,
                                obs::SampleProfile* profile = nullptr,
                                obs::TimeSeries* timeline = nullptr) {
  std::vector<std::string> apps = options.apps;
  if (apps.empty()) apps = apps::all_app_names();

  // Memoized profiling phase (never captured).
  harness::profile_all_apps();

  harness::GuestSystem sys;
  core::FaceChangeEngine engine(sys.hv(), sys.os().kernel());
  engine.enable();
  if (options.sample_period != 0) {
    core::FaceChangeEngine::TelemetryOptions topt;
    topt.sample_period = options.sample_period;
    topt.timeline_interval = options.timeline_interval;
    topt.queue_depth = [&sys] {
      return static_cast<u64>(sys.os().events().size());
    };
    engine.attach_telemetry(topt);
  }

  obs::metrics().reset();
  obs::recorder().set_capacity(options.ring);
  obs::recorder().start();

  std::vector<u32> pids;
  for (const std::string& app : apps) {
    const core::KernelViewConfig& cfg = harness::profile_of(app);
    engine.bind(app, engine.load_view(cfg));
    apps::AppScenario scenario = apps::make_app(app, options.iterations);
    pids.push_back(sys.os().spawn(app, scenario.model));
    scenario.install_environment(sys.os());
  }

  const Cycles end = sys.vcpu().cycles() + options.budget;
  sys.hv().run([&] {
    if (sys.vcpu().cycles() >= end) return true;
    for (u32 pid : pids)
      if (!sys.os().task_zombie_or_dead(pid)) return false;
    return true;
  });

  obs::recorder().stop();
  obs::metrics().gauge_set("os.event_queue_max_depth",
                           sys.os().events().max_depth());
  if (report != nullptr) *report = engine.metrics_json();
  if (profile != nullptr && engine.telemetry_attached())
    *profile = engine.profile();
  if (timeline != nullptr && engine.telemetry_attached())
    *timeline = engine.timeline();
  return obs::recorder().serialize();
}

int cmd_record_fleet(const RecordOptions& options) {
  harness::SharedImageOptions img_options;
  img_options.apps = options.apps;
  auto image = harness::build_shared_image(img_options);

  fleet::FleetOptions fleet_options;
  fleet_options.vms = options.vms;
  fleet_options.jobs = options.jobs;
  fleet_options.iterations = options.iterations;
  fleet_options.apps = options.apps;
  fleet_options.run_budget = options.budget;
  fleet_options.capture_traces = true;
  fleet_options.trace_capacity = options.ring;
  fleet_options.capture_telemetry = options.sample_period != 0;
  fleet_options.sample_period = options.sample_period;
  fleet_options.timeline_interval = options.timeline_interval;
  fleet::FleetRunner runner(*image, fleet_options);
  fleet::FleetReport report = runner.run();

  for (const fleet::VmResult& vm : report.vms)
    std::printf("vm %u (%s): %zu trace bytes, %llu insns%s\n", vm.vm,
                vm.app.c_str(), vm.trace.size(),
                static_cast<unsigned long long>(vm.instructions),
                vm.fault ? " [FAULT]" : "");
  std::vector<u8> merged = report.merged_trace();
  write_file(options.out, merged.data(), merged.size());
  if (!options.metrics_out.empty()) {
    std::string json = report.to_json();
    write_file(options.metrics_out, json.data(), json.size());
  }
  if (!options.chrome_out.empty())
    std::fprintf(stderr, "fctrace: --chrome is per-stream; run "
                         "`fctrace chrome %s --vm N` instead\n",
                 options.out.c_str());
  return 0;
}

int cmd_record(const RecordOptions& options) {
  if (options.vms > 0) return cmd_record_fleet(options);
  std::string metrics_json;
  std::vector<u8> bytes = record_scenario(options, &metrics_json);
  std::printf("recorded %llu events (%llu emitted, %llu dropped by ring)\n",
              static_cast<unsigned long long>(obs::recorder().size()),
              static_cast<unsigned long long>(obs::recorder().total_emitted()),
              static_cast<unsigned long long>(obs::recorder().dropped()));
  write_file(options.out, bytes.data(), bytes.size());
  if (!options.chrome_out.empty()) {
    std::string json = obs::chrome_trace_json(obs::recorder());
    write_file(options.chrome_out, json.data(), json.size());
  }
  if (!options.metrics_out.empty())
    write_file(options.metrics_out, metrics_json.data(), metrics_json.size());
  return 0;
}

/// FCFL containers: the per-VM streams, parsed. Returns false (untouched
/// out) when `raw` is a plain FCTR stream.
bool parse_fleet_or_die(const std::vector<u8>& raw,
                        std::vector<std::pair<u32, std::vector<u8>>>* out) {
  if (!fleet::is_fleet_trace(raw)) return false;
  if (!fleet::parse_fleet_trace(raw, out)) {
    std::fprintf(stderr, "fctrace: corrupt FCFL container\n");
    std::exit(1);
  }
  return true;
}

int cmd_dump(const std::string& path, const std::string& kind_filter,
             int view_filter, int vm_filter, u64 limit) {
  std::vector<u8> raw = read_file(path);
  std::vector<std::pair<u32, std::vector<u8>>> streams;
  if (parse_fleet_or_die(raw, &streams)) {
    std::printf("# FCFL container: %zu vm streams\n", streams.size());
  } else {
    streams.emplace_back(0, std::move(raw));
    vm_filter = -1;  // plain stream: no vm scoping
  }
  u64 shown = 0;
  for (const auto& [vm, bytes] : streams) {
    if (vm_filter >= 0 && vm != static_cast<u32>(vm_filter)) continue;
    obs::TraceHeader header;
    std::vector<obs::TraceEvent> events;
    parse_or_die(bytes, &header, &events);
    std::printf("# vm %u: %u events (%llu emitted), %llu cycles/sec\n", vm,
                header.event_count,
                static_cast<unsigned long long>(header.total_emitted),
                static_cast<unsigned long long>(header.cycles_per_second));
    for (const obs::TraceEvent& ev : events) {
      if (!kind_filter.empty() && kind_filter != obs::kind_name(ev.kind))
        continue;
      if (view_filter >= 0 && ev.view != static_cast<u16>(view_filter))
        continue;
      std::printf("%s\n", obs::render_event(ev).c_str());
      if (++shown == limit) return 0;
    }
  }
  return 0;
}

int cmd_aggregate(const std::string& path) {
  std::vector<u8> raw = read_file(path);
  std::vector<std::pair<u32, std::vector<u8>>> streams;
  bool is_fleet = parse_fleet_or_die(raw, &streams);
  if (!is_fleet) streams.emplace_back(0, std::move(raw));

  struct Agg {
    u64 count = 0;
    u64 cycles = 0;  // summed arg3 (the sliced kinds charge cycles there)
    std::map<u32, u64> per_vm;  // vm id → count (fleet containers)
  };
  std::map<std::string, Agg> by_kind;
  // view id → per-tier sample weight (interp/block/trace), from the
  // sampling profiler's prof_sample events (weight = arg1 periods).
  std::map<u16, std::array<u64, 3>> view_samples;
  u64 sample_total = 0;
  u64 total_events = 0;
  u64 total_dropped = 0;
  for (const auto& [vm, bytes] : streams) {
    obs::TraceHeader header;
    std::vector<obs::TraceEvent> events;
    parse_or_die(bytes, &header, &events);
    total_events += header.event_count;
    total_dropped += header.total_emitted - header.event_count;
    for (const obs::TraceEvent& ev : events) {
      Agg& agg = by_kind[obs::kind_name(ev.kind)];
      ++agg.count;
      ++agg.per_vm[vm];
      if (ev.kind == obs::EventKind::kViewSwitch ||
          ev.kind == obs::EventKind::kRecovery)
        agg.cycles += ev.arg3;
      if (ev.kind == obs::EventKind::kProfSample) {
        u8 tier = ev.flags < 3 ? static_cast<u8>(ev.flags) : u8{0};
        view_samples[ev.view][tier] += ev.arg1;
        sample_total += ev.arg1;
      }
    }
    if (is_fleet) {
      Cycles span =
          events.empty() ? 0 : events.back().when - events.front().when;
      std::printf("vm %-3u %8u events spanning %llu cycles\n", vm,
                  header.event_count, static_cast<unsigned long long>(span));
    }
  }
  std::printf("%llu events total (%llu dropped by rings)\n",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_dropped));
  std::printf("%-20s %10s %14s%s\n", "kind", "count", "cycles",
              is_fleet ? "  per-vm" : "");
  for (const auto& [kind, agg] : by_kind) {
    std::printf("%-20s %10llu %14llu", kind.c_str(),
                static_cast<unsigned long long>(agg.count),
                static_cast<unsigned long long>(agg.cycles));
    if (is_fleet) {
      std::printf("  ");
      bool first = true;
      for (const auto& [vm, bytes] : streams) {
        auto it = agg.per_vm.find(vm);
        std::printf("%s%llu", first ? "" : "/",
                    static_cast<unsigned long long>(
                        it == agg.per_vm.end() ? 0 : it->second));
        first = false;
      }
    }
    std::printf("\n");
  }
  // Trace-tier rollup: the four kinds above already appear as rows, but the
  // tier is judged as a unit (how much execution it carried, how often it
  // bailed), so summarize it on one line.
  auto kind_count = [&](const char* kind) -> u64 {
    auto it = by_kind.find(kind);
    return it == by_kind.end() ? 0 : it->second.count;
  };
  std::printf("trace tier: %llu built / %llu dispatched / %llu retired / "
              "%llu side-exits\n",
              static_cast<unsigned long long>(kind_count("trace_build")),
              static_cast<unsigned long long>(kind_count("trace_dispatch")),
              static_cast<unsigned long long>(kind_count("trace_retire")),
              static_cast<unsigned long long>(kind_count("trace_side_exit")));
  // Per-view cycle share from the sampling profiler's events (only present
  // when the recording ran with telemetry attached). Shares are integer
  // basis points of the total sample weight — deterministic output.
  if (sample_total != 0) {
    std::printf("view cycle share (%llu sample periods):\n",
                static_cast<unsigned long long>(sample_total));
    std::printf("%-8s %10s %10s %10s %10s  %7s\n", "view", "interp", "block",
                "trace", "total", "share");
    for (const auto& [view, tiers] : view_samples) {
      u64 row = tiers[0] + tiers[1] + tiers[2];
      u64 bp = row * 10000 / sample_total;
      std::printf("%-8u %10llu %10llu %10llu %10llu  %3llu.%02llu%%\n", view,
                  static_cast<unsigned long long>(tiers[0]),
                  static_cast<unsigned long long>(tiers[1]),
                  static_cast<unsigned long long>(tiers[2]),
                  static_cast<unsigned long long>(row),
                  static_cast<unsigned long long>(bp / 100),
                  static_cast<unsigned long long>(bp % 100));
    }
  }
  return 0;
}

int cmd_flame(RecordOptions options, const std::string& json_out,
              std::size_t top) {
  options.timeline_interval = 0;  // profiler only
  if (options.sample_period == 0) {
    std::fprintf(stderr, "fctrace: flame needs a non-zero --period\n");
    return 2;
  }
  obs::SampleProfile profile;
  record_scenario(options, nullptr, &profile, nullptr);
  if (profile.total_weight() == 0) {
    std::fprintf(stderr, "fctrace: run too short for period %llu — no "
                         "samples\n",
                 static_cast<unsigned long long>(options.sample_period));
    return 1;
  }
  std::string collapsed = profile.collapsed();
  write_file(options.out, collapsed.data(), collapsed.size());
  if (!json_out.empty()) {
    std::string json = profile.to_json();
    write_file(json_out, json.data(), json.size());
  }
  std::printf("%llu sample periods x %llu cycles\n%s",
              static_cast<unsigned long long>(profile.total_weight()),
              static_cast<unsigned long long>(profile.period()),
              profile.render_top(top).c_str());
  return 0;
}

struct TimelineOptions {
  u32 vms = 8;
  u32 jobs = 1;
  u32 iterations = 4;
  Cycles budget = 300'000'000;
  std::vector<std::string> apps;
  Cycles sample_period = core::FaceChangeEngine::kDefaultSamplePeriod;
  Cycles interval = core::FaceChangeEngine::kDefaultTimelineInterval;
  std::string out = "timeline.json";
  std::string column = "instructions";
};

int cmd_timeline(const TimelineOptions& options) {
  if (options.sample_period == 0 || options.interval == 0) {
    std::fprintf(stderr,
                 "fctrace: timeline needs non-zero --period/--interval\n");
    return 2;
  }
  harness::SharedImageOptions img_options;
  img_options.apps = options.apps;
  auto image = harness::build_shared_image(img_options);

  fleet::FleetOptions fleet_options;
  fleet_options.vms = options.vms;
  fleet_options.jobs = options.jobs;
  fleet_options.iterations = options.iterations;
  fleet_options.apps = options.apps;
  fleet_options.run_budget = options.budget;
  fleet_options.capture_telemetry = true;
  fleet_options.sample_period = options.sample_period;
  fleet_options.timeline_interval = options.interval;
  fleet::FleetRunner runner(*image, fleet_options);
  fleet::FleetReport report = runner.run();

  std::string json = report.timeline_json();
  write_file(options.out, json.data(), json.size());

  obs::Histogram sc = report.merged_switch_cost();
  std::printf("%zu vms, %llu instructions; switch cost p50/p90/p99 = "
              "%llu/%llu/%llu cycles (%llu switches)\n",
              report.vms.size(),
              static_cast<unsigned long long>(report.total_instructions()),
              static_cast<unsigned long long>(sc.p50()),
              static_cast<unsigned long long>(sc.p90()),
              static_cast<unsigned long long>(sc.p99()),
              static_cast<unsigned long long>(sc.count));
  std::vector<const obs::TimeSeries*> series;
  for (const fleet::VmResult& vm : report.vms) series.push_back(&vm.timeline);
  obs::TimelineRollup rollup = obs::TimelineRollup::build(series);
  std::string table = rollup.render_column(options.column, 40);
  if (table.empty())
    std::fprintf(stderr, "fctrace: unknown column '%s' (see %s)\n",
                 options.column.c_str(), options.out.c_str());
  else
    std::printf("%s", table.c_str());
  std::printf("fleet cycle attribution (top 10):\n%s",
              report.merged_profile().render_top(10).c_str());
  return 0;
}

int cmd_chrome(const std::string& path, std::string out_path, int vm_filter) {
  std::vector<u8> raw = read_file(path);
  std::vector<std::pair<u32, std::vector<u8>>> streams;
  if (parse_fleet_or_die(raw, &streams)) {
    if (vm_filter < 0) {
      std::fprintf(stderr,
                   "fctrace: FCFL container holds %zu streams; pick one "
                   "with --vm N\n",
                   streams.size());
      return 2;
    }
    bool found = false;
    for (auto& [vm, bytes] : streams) {
      if (vm != static_cast<u32>(vm_filter)) continue;
      raw = std::move(bytes);
      found = true;
      break;
    }
    if (!found) {
      std::fprintf(stderr, "fctrace: no vm %d in container\n", vm_filter);
      return 2;
    }
  }
  obs::TraceHeader header;
  std::vector<obs::TraceEvent> events;
  parse_or_die(raw, &header, &events);
  if (out_path.empty()) out_path = path + ".json";
  std::string json = obs::chrome_trace_json(events, header.cycles_per_second);
  write_file(out_path, json.data(), json.size());
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  std::vector<u8> raw_a = read_file(path_a);
  std::vector<u8> raw_b = read_file(path_b);
  if (raw_a == raw_b) {
    std::printf("identical (%zu bytes)\n", raw_a.size());
    return 0;
  }
  obs::TraceHeader ha, hb;
  std::vector<obs::TraceEvent> ea, eb;
  parse_or_die(raw_a, &ha, &ea);
  parse_or_die(raw_b, &hb, &eb);
  if (ha.event_count != hb.event_count)
    std::printf("event counts differ: %u vs %u\n", ha.event_count,
                hb.event_count);
  std::size_t n = std::min(ea.size(), eb.size());
  u64 mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const obs::TraceEvent& a = ea[i];
    const obs::TraceEvent& b = eb[i];
    bool same = a.when == b.when && a.kind == b.kind && a.flags == b.flags &&
                a.view == b.view && a.arg0 == b.arg0 && a.arg1 == b.arg1 &&
                a.arg2 == b.arg2 && a.arg3 == b.arg3;
    if (same) continue;
    if (mismatches == 0) {
      std::printf("first divergence at event %zu:\n", i);
      std::printf("  a: %s\n", obs::render_event(a).c_str());
      std::printf("  b: %s\n", obs::render_event(b).c_str());
    }
    ++mismatches;
  }
  std::printf("%llu of %zu compared events differ\n",
              static_cast<unsigned long long>(mismatches), n);
  return 1;
}

int cmd_selftest() {
#if defined(FC_OBS_DISABLED)
  std::printf("SKIP: built with FC_OBS_DISABLED, emit sites compiled out\n");
  return 77;  // ctest SKIP_RETURN_CODE
#endif
  RecordOptions options;  // all apps, default iterations and budget
  std::vector<u8> first = record_scenario(options, nullptr);
  std::vector<u8> second = record_scenario(options, nullptr);
  std::printf("run 1: %zu bytes, run 2: %zu bytes\n", first.size(),
              second.size());
  if (first.size() <= obs::kSerializedEventSize) {
    std::printf("FAIL: recording is empty\n");
    return 1;
  }
  if (first != second) {
    std::printf("FAIL: streams differ — determinism contract broken\n");
    obs::TraceHeader ha, hb;
    std::vector<obs::TraceEvent> ea, eb;
    if (obs::parse_trace(first, &ha, &ea) &&
        obs::parse_trace(second, &hb, &eb)) {
      std::size_t n = std::min(ea.size(), eb.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (std::memcmp(&ea[i], &eb[i], sizeof(obs::TraceEvent)) == 0)
          continue;
        std::printf("first divergence at event %zu:\n  a: %s\n  b: %s\n", i,
                    obs::render_event(ea[i]).c_str(),
                    obs::render_event(eb[i]).c_str());
        break;
      }
    }
    return 1;
  }
  // Round-trip sanity: the stream parses back to the same events.
  obs::TraceHeader header;
  std::vector<obs::TraceEvent> events;
  if (!obs::parse_trace(first, &header, &events) ||
      events.size() != header.event_count) {
    std::printf("FAIL: serialized stream does not parse back\n");
    return 1;
  }
  std::printf("OK: %u events byte-identical across two runs\n",
              header.event_count);
  return 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];

  // Global flags valid for every subcommand.
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--log-level") && i + 1 < argc) {
      auto level = parse_log_level(argv[++i]);
      if (!level) {
        std::fprintf(stderr, "fctrace: unknown log level '%s'\n", argv[i]);
        return 2;
      }
      set_log_level(*level);
    } else {
      args.emplace_back(argv[i]);
    }
  }
  auto flag_value = [&](const char* flag) -> const std::string* {
    for (std::size_t i = 0; i + 1 < args.size(); ++i)
      if (args[i] == flag) return &args[i + 1];
    return nullptr;
  };
  auto positional = [&](std::size_t index) -> const std::string* {
    std::size_t seen = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].rfind("-", 0) == 0) {
        ++i;  // every flag takes a value
        continue;
      }
      if (seen++ == index) return &args[i];
    }
    return nullptr;
  };

  if (cmd == "record") {
    RecordOptions options;
    if (const std::string* v = flag_value("-n"))
      options.iterations = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("--ring"))
      options.ring = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("--budget"))
      options.budget = std::strtoull(v->c_str(), nullptr, 10);
    if (const std::string* v = flag_value("--apps"))
      options.apps = split_csv(*v);
    if (const std::string* v = flag_value("-o")) options.out = *v;
    if (const std::string* v = flag_value("--chrome"))
      options.chrome_out = *v;
    if (const std::string* v = flag_value("--metrics"))
      options.metrics_out = *v;
    if (const std::string* v = flag_value("--vms"))
      options.vms = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("--jobs"))
      options.jobs = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("--period"))
      options.sample_period = std::strtoull(v->c_str(), nullptr, 10);
    return cmd_record(options);
  }
  if (cmd == "flame") {
    RecordOptions options;
    options.out = "flame.collapsed";
    options.sample_period = core::FaceChangeEngine::kDefaultSamplePeriod;
    if (const std::string* v = flag_value("-n"))
      options.iterations = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("--budget"))
      options.budget = std::strtoull(v->c_str(), nullptr, 10);
    if (const std::string* v = flag_value("--apps"))
      options.apps = split_csv(*v);
    if (const std::string* v = flag_value("-o")) options.out = *v;
    if (const std::string* v = flag_value("--period"))
      options.sample_period = std::strtoull(v->c_str(), nullptr, 10);
    std::string json_out;
    std::size_t top = 20;
    if (const std::string* v = flag_value("--json")) json_out = *v;
    if (const std::string* v = flag_value("--top"))
      top = static_cast<std::size_t>(std::atoi(v->c_str()));
    return cmd_flame(options, json_out, top);
  }
  if (cmd == "timeline") {
    TimelineOptions options;
    if (const std::string* v = flag_value("--vms"))
      options.vms = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("--jobs"))
      options.jobs = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("-n"))
      options.iterations = static_cast<u32>(std::atoi(v->c_str()));
    if (const std::string* v = flag_value("--budget"))
      options.budget = std::strtoull(v->c_str(), nullptr, 10);
    if (const std::string* v = flag_value("--apps"))
      options.apps = split_csv(*v);
    if (const std::string* v = flag_value("--period"))
      options.sample_period = std::strtoull(v->c_str(), nullptr, 10);
    if (const std::string* v = flag_value("--interval"))
      options.interval = std::strtoull(v->c_str(), nullptr, 10);
    if (const std::string* v = flag_value("-o")) options.out = *v;
    if (const std::string* v = flag_value("--column"))
      options.column = *v;
    return cmd_timeline(options);
  }
  if (cmd == "dump") {
    const std::string* path = positional(0);
    if (path == nullptr) usage();
    std::string kind;
    int view = -1;
    int vm = -1;
    u64 limit = ~0ull;
    if (const std::string* v = flag_value("--kind")) kind = *v;
    if (const std::string* v = flag_value("--view"))
      view = std::atoi(v->c_str());
    if (const std::string* v = flag_value("--vm")) vm = std::atoi(v->c_str());
    if (const std::string* v = flag_value("--limit"))
      limit = std::strtoull(v->c_str(), nullptr, 10);
    return cmd_dump(*path, kind, view, vm, limit);
  }
  if (cmd == "aggregate") {
    const std::string* path = positional(0);
    if (path == nullptr) usage();
    return cmd_aggregate(*path);
  }
  if (cmd == "chrome") {
    const std::string* path = positional(0);
    if (path == nullptr) usage();
    const std::string* out = flag_value("-o");
    int vm = -1;
    if (const std::string* v = flag_value("--vm")) vm = std::atoi(v->c_str());
    return cmd_chrome(*path, out != nullptr ? *out : "", vm);
  }
  if (cmd == "diff") {
    const std::string* a = positional(0);
    const std::string* b = positional(1);
    if (a == nullptr || b == nullptr) usage();
    return cmd_diff(*a, *b);
  }
  if (cmd == "selftest") return cmd_selftest();
  usage();
}
